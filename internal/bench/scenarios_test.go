package bench

// Integration scenarios mirroring the example queries of §2: Q1 (speeding
// vehicles), Q2 (aggregate traffic volume per intersection), Q4 (vehicles
// seen at one camera and then another) and Q5/Q6-style low-selectivity
// triggers — each run end-to-end through the engine with PPs injected.

import (
	"math"
	"testing"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/query"
	"probpred/internal/udf"
)

func scenarioHarness(t *testing.T) *TrafficHarness {
	t.Helper()
	h, err := NewTrafficHarness(quick)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestScenarioQ1Speeding: find vehicles with speed above a threshold.
func TestScenarioQ1Speeding(t *testing.T) {
	h := scenarioHarness(t)
	pred := query.MustParse("s>60")
	nopPlan, _, err := h.NoPPlan(pred)
	if err != nil {
		t.Fatal(err)
	}
	nop, err := engine.Run(nopPlan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, dec, err := h.PPPlan(pred, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("speeding query should inject a PP")
	}
	pp, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pp.ClusterTime >= nop.ClusterTime {
		t.Fatal("no saving on Q1")
	}
	if retained(nop, pp) < 0.85 {
		t.Fatalf("Q1 accuracy %v", retained(nop, pp))
	}
}

// TestScenarioQ2VolumePerIntersection: count vehicles per from-intersection
// among the fast ones — grouping after a PP-filtered selection. The PP must
// not distort the per-group distribution beyond its false-negative budget.
func TestScenarioQ2VolumePerIntersection(t *testing.T) {
	h := scenarioHarness(t)
	pred := query.MustParse("s>50")
	build := func(withPP bool) (*engine.Result, error) {
		var ops []engine.Operator
		plan, dec, err := h.PPPlan(pred, 0.98)
		if err != nil {
			return nil, err
		}
		if withPP {
			ops = plan.Ops
		} else {
			nop, _, err := h.NoPPlan(pred)
			if err != nil {
				return nil, err
			}
			ops = nop.Ops
		}
		_ = dec
		// Materialize the grouping column and aggregate.
		iUDF, err := udf.TrafficUDFFor("i", 0, 9)
		if err != nil {
			return nil, err
		}
		ops = append(ops, &engine.Process{P: iUDF},
			&engine.GroupReduce{R: udf.CountReducer{KeyCol: "i"}})
		return engine.Run(engine.Plan{Ops: ops}, engine.Config{})
	}
	truth, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Rows) != len(data.Intersections) {
		t.Fatalf("groups = %d", len(truth.Rows))
	}
	// Compare per-group counts: the filtered aggregate must track the true
	// one within the accuracy budget plus margin.
	truthCounts := map[string]float64{}
	for _, r := range truth.Rows {
		k, _ := r.Get("i")
		c, _ := r.Get("count")
		truthCounts[k.Str] = c.Num
	}
	for _, r := range filtered.Rows {
		k, _ := r.Get("i")
		c, _ := r.Get("count")
		want := truthCounts[k.Str]
		if want == 0 {
			continue
		}
		if ratio := c.Num / want; ratio < 0.85 || ratio > 1.001 {
			t.Fatalf("group %s count ratio %v (PP distorted the aggregate)", k.Str, ratio)
		}
	}
	if filtered.ClusterTime >= truth.ClusterTime {
		t.Fatal("aggregation query saw no saving")
	}
}

// TestScenarioQ4SeenThen: vehicles seen at intersection pt303 and later at
// pt335 — two PP-filtered streams joined by a sequence combiner.
func TestScenarioQ4SeenThen(t *testing.T) {
	h := scenarioHarness(t)
	// Build the "camera C2" side: rows at pt335 with a time column.
	mkSide := func(predStr string, timeOffset float64) ([]engine.Row, float64, error) {
		pred := query.MustParse(predStr)
		plan, dec, err := h.PPPlan(pred, 0.98)
		if err != nil {
			return nil, 0, err
		}
		_ = dec
		ops := append(plan.Ops, &engine.Project{Compute: []engine.ComputedCol{
			{Name: "veh", Fn: func(r engine.Row) (query.Value, error) {
				// A synthetic vehicle identity: blobs with equal ID%97
				// are "the same vehicle" re-observed.
				return query.Number(float64(r.Blob.ID % 97)), nil
			}},
			{Name: "time", Fn: func(r engine.Row) (query.Value, error) {
				return query.Number(float64(r.Blob.ID) + timeOffset), nil
			}},
		}})
		res, err := engine.Run(engine.Plan{Ops: ops}, engine.Config{})
		if err != nil {
			return nil, 0, err
		}
		return res.Rows, res.ClusterTime, nil
	}
	left, lcost, err := mkSide("i=pt303", 0)
	if err != nil {
		t.Fatal(err)
	}
	right, rcost, err := mkSide("i=pt335", 1e6) // later in time
	if err != nil {
		t.Fatal(err)
	}
	if len(left) == 0 || len(right) == 0 {
		t.Skip("degenerate draw")
	}
	comb := &engine.Combine{C: udf.SequenceCombiner{TimeCol: "time"},
		Right: right, LeftKey: "veh", RightKey: "veh"}
	// Run the combine over the PP-filtered left side.
	out, err := comb.Exec(left, newStatsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no vehicle seen at pt303 then pt335")
	}
	for _, r := range out {
		first, _ := r.Get("firstSeen")
		then, _ := r.Get("thenSeen")
		if first.Num >= then.Num {
			t.Fatalf("sequence violated: %v >= %v", first.Num, then.Num)
		}
	}
	if lcost <= 0 || rcost <= 0 {
		t.Fatal("missing costs")
	}
}

// newStatsForTest builds a Stats value usable outside Run.
func newStatsForTest() *engine.Stats {
	return &engine.Stats{OpCost: map[string]float64{},
		RowsIn: map[string]int{}, RowsOut: map[string]int{}}
}

// TestScenarioTriggerLowSelectivity: a Q5/Q6-style alert — an extremely
// selective predicate where PPs shine the most.
func TestScenarioTriggerLowSelectivity(t *testing.T) {
	h := scenarioHarness(t)
	pred := query.MustParse("t=truck & c=red & s>60")
	nopPlan, _, err := h.NoPPlan(pred)
	if err != nil {
		t.Fatal(err)
	}
	nop, err := engine.Run(nopPlan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, dec, err := h.PPPlan(pred, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs < 2 {
		t.Fatalf("trigger should use multiple PPs: %+v", dec.Expr)
	}
	pp, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := nop.ClusterTime / pp.ClusterTime
	if speedup < 3 {
		t.Fatalf("trigger speed-up only %.2fx", speedup)
	}
	// Latency matters for alerts: the PP plan must also answer faster.
	if pp.Latency >= nop.Latency {
		t.Fatalf("trigger latency not improved: %v vs %v", pp.Latency, nop.Latency)
	}
	if math.IsNaN(speedup) {
		t.Fatal("NaN speedup")
	}
}
