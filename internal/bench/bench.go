// Package bench regenerates every table and figure of the paper's
// evaluation (§8 and Appendix B) over the synthetic datasets. Each
// experiment is a function from a Config to a Report; cmd/ppbench prints
// them, the root package's benchmarks time them, and EXPERIMENTS.md records
// paper-versus-measured values.
package bench

import (
	"fmt"
	"strings"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/svm"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all data generation and training.
	Seed uint64
	// Quick shrinks datasets for fast test runs; the full scale is used by
	// cmd/ppbench and the benchmarks.
	Quick bool
	// Obs, when set, receives spans/metrics from the engine runs and
	// optimizer searches the experiments perform (cmd/ppbench attaches a
	// collector per experiment for the BENCH_pp.json trace summaries).
	Obs *obs.Tracer
	// Metrics, when set, receives the engine's numeric telemetry from every
	// experiment run (cmd/ppbench serves it on -metrics).
	Metrics *metrics.Registry
}

// Exec is the engine configuration experiments run plans under, carrying
// the attached tracer and metrics registry.
func (c Config) Exec() engine.Config { return engine.Config{Obs: c.Obs, Metrics: c.Metrics} }

// scale returns quick when cfg.Quick, else full.
func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("fig9", "table4", ...).
	ID string
	// Title describes what the paper's counterpart shows.
	Title string
	// Lines is the formatted output.
	Lines []string
	// Metrics carries the experiment's headline numbers machine-readably
	// (speedups, accuracies, latencies) for BENCH_pp.json; the same values
	// appear formatted in Lines.
	Metrics map[string]float64
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// metric records one machine-readable headline value.
func (r *Report) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// table is a minimal fixed-width table formatter.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render() []string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	out := []string{line(t.header)}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out = append(out, line(sep))
	for _, r := range t.rows {
		out = append(out, line(r))
	}
	return out
}

// datasetSpec pairs a categorical dataset with the PP approach that wins on
// it (the model-selection outcomes reported under Figure 9).
type datasetSpec struct {
	name     string
	approach string
	make     func(cfg Config) *data.Categorical
}

func specs(cfg Config) []datasetSpec {
	return []datasetSpec{
		{"lshtc", "FH+SVM", func(c Config) *data.Categorical {
			return data.LSHTC(data.LSHTCConfig{Docs: c.scale(3000, 1200), Seed: c.Seed})
		}},
		{"sun", "PCA+KDE", func(c Config) *data.Categorical { return data.SUNAttribute(c.Seed) }},
		{"ucf101", "PCA+KDE", func(c Config) *data.Categorical {
			return data.UCF101(data.UCFConfig{Clips: c.scale(2400, 1600), Seed: c.Seed})
		}},
		{"coco", "DNN", func(c Config) *data.Categorical { return data.COCO(c.Seed) }},
		{"imagenet", "DNN", func(c Config) *data.Categorical { return data.ImageNet(c.Seed) }},
	}
}

// trainCategoryPP trains a PP for "has category cat" with a 60/20/20 split
// (§8.1) and returns the PP and the held-out test set.
func trainCategoryPP(d *data.Categorical, cat int, approach string, seed uint64) (*core.PP, blob.Set, error) {
	set := d.SetFor(cat)
	rng := mathx.NewRNG(seed ^ uint64(cat)*0x9e37)
	train, val, test := set.Split(rng, 0.6, 0.2)
	clause := fmt.Sprintf("%s.cat=%d", d.Name, cat)
	cfg := core.TrainConfig{Approach: approach, Seed: seed + uint64(cat)}
	if approach == "DNN" {
		cfg.DNN.Epochs = 25
	}
	pp, err := core.Train(clause, train, val, cfg)
	if err != nil {
		return nil, blob.Set{}, fmt.Errorf("bench: training %s: %w", clause, err)
	}
	return pp, test, nil
}

// pickCategories returns n category indices with enough positives for a
// stable validation split, preferring evenly spread selectivities.
func pickCategories(d *data.Categorical, n int, minPositives int) []int {
	var out []int
	for k := 0; k < d.NumCategories() && len(out) < n; k++ {
		if int(d.Selectivity(k)*float64(len(d.Blobs))) >= minPositives {
			out = append(out, k)
		}
	}
	return out
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// newRNG is a local alias keeping call sites short.
func newRNG(seed uint64) *mathx.RNG { return mathx.NewRNG(seed) }

// svmConfigForTraffic tunes the SVM for the 32-dim traffic embeddings: a
// few extra epochs help the narrow attribute margins.
func svmConfigForTraffic() svm.Config { return svm.Config{Epochs: 15} }
