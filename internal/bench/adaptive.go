package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"probpred/internal/adapt"
	"probpred/internal/blob"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/udf"
)

// Adaptive is a robustness experiment beyond the paper: §A.5 notes that
// mis-estimated reductions surface at runtime, and the adapt controller
// (DESIGN.md "Adaptive re-optimization") is this repo's answer. The
// experiment optimizes a two-PP conjunction against the training prefix,
// then runs it over a stream whose attribute statistics invert the plan's
// estimates — the cached short-circuit order is maximally stale. The same
// plan runs twice: plain, and under the adapt controller, which must detect
// the divergence mid-query, re-enter the optimizer and hot-swap the PP
// order while keeping outputs byte-identical. CI gates on
// adaptive cluster cost <= 0.8x non-adaptive with at least one swap.

// AdaptiveVariant is one run's outcome (plain or adaptive execution).
type AdaptiveVariant struct {
	Mode   string  `json:"mode"`
	WallMS float64 `json:"wall_ms"`
	// ClusterVMS is total virtual cluster cost — for the adaptive variant
	// this includes the modeled re-planning charge.
	ClusterVMS float64 `json:"cluster_vms"`
	Rows       int     `json:"rows"`
	// Swaps / Replans count mid-query plan hot-swaps and optimizer
	// re-entries (zero for the plain variant).
	Swaps   int `json:"swaps"`
	Replans int `json:"replans"`
}

// AdaptiveDoc is the machine-readable report written to BENCH_adaptive.json.
type AdaptiveDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`

	Pred       string  `json:"pred"`
	Accuracy   float64 `json:"accuracy"`
	StreamRows int     `json:"stream_rows"`
	ChunkRows  int     `json:"chunk_rows"`
	Workers    int     `json:"workers"`
	// PlannedExpr / FinalExpr are the PP evaluation orders before and after
	// adaptation.
	PlannedExpr string `json:"planned_expr"`
	FinalExpr   string `json:"final_expr"`
	// MaxDivergence is the largest observed-vs-planned per-leaf reduction
	// gap the controller saw at a chunk boundary.
	MaxDivergence float64 `json:"max_divergence"`

	NonAdaptive AdaptiveVariant `json:"non_adaptive"`
	Adaptive    AdaptiveVariant `json:"adaptive"`

	// CostRatio is adaptive over non-adaptive virtual cluster cost
	// (re-planning charge included). CI requires <= 0.8.
	CostRatio float64 `json:"cost_ratio"`
	// OutputsIdentical reports byte-identical rendered results (rows, row
	// order, row contents) across the two variants. CI requires true.
	OutputsIdentical bool `json:"outputs_identical"`
}

// Write serders the document as indented JSON.
func (d *AdaptiveDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// truthMatches evaluates a corpus clause ("t=SUV", "s>60", "i=pt211")
// against a blob's ground truth.
func truthMatches(b blob.Blob, clause query.Pred) bool {
	ok, err := clause.Eval(data.TrafficLookup(b))
	return err == nil && ok
}

// driftedStream resamples the harness's test stream so that the plan's
// FIRST-ordered clause passes nearly every blob (its planned reduction
// evaporates) while the full conjunction stays rare: the worst stream for
// the cached order, and the best case for flipping it. Blobs are real
// harness blobs (real features, so the trained PPs score them natively),
// re-IDed sequentially.
func driftedStream(src []blob.Blob, first, second string, rows, onEvery int) ([]blob.Blob, error) {
	fp, sp := query.MustParse(first), query.MustParse(second)
	var majority, both []blob.Blob
	for _, b := range src {
		f, s := truthMatches(b, fp), truthMatches(b, sp)
		switch {
		case f && s:
			both = append(both, b)
		case f && !s:
			majority = append(majority, b)
		}
	}
	if len(majority) == 0 || len(both) == 0 {
		return nil, fmt.Errorf("bench: adaptive stream pools empty (majority=%d both=%d)", len(majority), len(both))
	}
	out := make([]blob.Blob, rows)
	mi, bi := 0, 0
	for i := range out {
		var b blob.Blob
		if i%onEvery == 0 {
			b = both[bi%len(both)]
			bi++
		} else {
			b = majority[mi%len(majority)]
			mi++
		}
		b.ID = i
		out[i] = b
	}
	return out, nil
}

// renderResult flattens one run's rows to the byte-comparison primitive:
// blob ID plus materialized columns per row.
func renderResult(res *engine.Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%d:%v;", r.Blob.ID, r.Cols)
	}
	return sb.String()
}

// RunAdaptiveBench trains the traffic corpus, builds the inverted-statistics
// stream, runs the plan with and without the adapt controller and returns
// the JSON document plus a rendered report.
func RunAdaptiveBench(cfg Config) (*AdaptiveDoc, *Report, error) {
	const (
		accuracy = 0.95
		workers  = 4
		onEvery  = 50
	)
	rows := cfg.scale(20000, 5000)
	chunkRows := cfg.scale(512, 256)
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, nil, err
	}

	// Outputs are byte-identical across variants by construction, so the UDF
	// stage costs exactly the same in both runs and the adaptive win lives
	// entirely in PP execution cost. The experiment therefore uses a light
	// attribute pipeline (features pre-extracted at ingest, as in the
	// paper's cached-UDF discussion) so the PP stage is a meaningful share
	// of cluster cost and the stale-order penalty is visible in the total.
	pred := query.MustParse("t=van & s>60")
	procs := []engine.Processor{
		&udf.TrafficAttribute{Col: "t", UDFName: "TypeLookup", CostMS: 3},
		&udf.TrafficAttribute{Col: "s", UDFName: "SpeedLookup", CostMS: 2},
	}
	dec, err := h.Opt.Optimize(pred, optimizer.Options{
		Accuracy: accuracy,
		UDFCost:  udf.PipelineCost(procs),
		Domains:  data.TrafficDomains(),
		Obs:      cfg.Obs,
	})
	if err != nil {
		return nil, nil, err
	}
	if !dec.Inject || dec.NumPPs != 2 {
		return nil, nil, fmt.Errorf("bench: adaptive needs a two-PP injection, got inject=%v pps=%d", dec.Inject, dec.NumPPs)
	}

	// Drift against whichever order the optimizer actually chose: the
	// first-evaluated leaf becomes the non-selective one. Execution order can
	// differ from the rendered expression (plan search reverses siblings when
	// the reversed fold is cheaper), so ask the compiled filter.
	leaves := dec.Filter.ExecutionOrder()
	if len(leaves) != 2 {
		return nil, nil, fmt.Errorf("bench: adaptive expects 2 leaves, got %v", leaves)
	}
	first, second := leaves[0], leaves[1]
	stream, err := driftedStream(h.TestBlobs, first, second, rows, onEvery)
	if err != nil {
		return nil, nil, err
	}
	plan := engine.Plan{Ops: []engine.Operator{&engine.Scan{Blobs: stream}}}
	plan.Ops = append(plan.Ops, &engine.PPFilter{F: dec.Filter})
	for _, p := range procs {
		plan.Ops = append(plan.Ops, &engine.Process{P: p})
	}
	plan.Ops = append(plan.Ops, &engine.Select{Pred: pred})
	exec := engine.Config{Workers: workers, Obs: cfg.Obs, Metrics: cfg.Metrics}

	start := time.Now()
	plain, err := engine.Run(plan, exec)
	if err != nil {
		return nil, nil, err
	}
	plainWall := time.Since(start)

	ctl := adapt.New(adapt.Config{ChunkRows: chunkRows, Metrics: cfg.Metrics, Obs: cfg.Obs})
	start = time.Now()
	res, arep, err := ctl.Run(plan, exec, adapt.RunSpec{
		Key: "bench/" + pred.String(),
		Reopt: func(f *optimizer.Compiled, minRows uint64) (*optimizer.Reoptimized, error) {
			return h.Opt.Reoptimize(f, minRows, cfg.Obs)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	adaptWall := time.Since(start)

	doc := &AdaptiveDoc{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Pred:          pred.String(),
		Accuracy:      accuracy,
		StreamRows:    rows,
		ChunkRows:     chunkRows,
		Workers:       workers,
		PlannedExpr:   dec.Filter.EvalExpr(),
		FinalExpr:     arep.FinalExpr,
		MaxDivergence: arep.MaxDivergence,
		NonAdaptive: AdaptiveVariant{
			Mode:       "non-adaptive",
			WallMS:     float64(plainWall.Microseconds()) / 1000,
			ClusterVMS: plain.ClusterTime,
			Rows:       len(plain.Rows),
		},
		Adaptive: AdaptiveVariant{
			Mode:       "adaptive",
			WallMS:     float64(adaptWall.Microseconds()) / 1000,
			ClusterVMS: res.ClusterTime,
			Rows:       len(res.Rows),
			Swaps:      len(arep.Swaps),
			Replans:    arep.Replans,
		},
		OutputsIdentical: renderResult(plain) == renderResult(res),
	}
	if plain.ClusterTime > 0 {
		doc.CostRatio = res.ClusterTime / plain.ClusterTime
	}

	rep := &Report{ID: "adapt", Title: fmt.Sprintf(
		"Mid-query re-optimization under PP drift: %s over %d inverted-statistics rows", doc.Pred, rows)}
	tb := &table{header: []string{"mode", "cluster vms", "wall ms", "rows", "swaps", "replans"}}
	for _, v := range []AdaptiveVariant{doc.NonAdaptive, doc.Adaptive} {
		tb.add(v.Mode, f1(v.ClusterVMS), f1(v.WallMS), fmt.Sprintf("%d", v.Rows),
			fmt.Sprintf("%d", v.Swaps), fmt.Sprintf("%d", v.Replans))
	}
	rep.Lines = tb.render()
	rep.Lines = append(rep.Lines, "",
		fmt.Sprintf("order: %s -> %s (max divergence %.3f)", doc.PlannedExpr, doc.FinalExpr, doc.MaxDivergence),
		fmt.Sprintf("cost ratio (adaptive/non-adaptive): %.3f   outputs identical: %v",
			doc.CostRatio, doc.OutputsIdentical))
	rep.metric("cost_ratio", doc.CostRatio)
	rep.metric("swaps", float64(doc.Adaptive.Swaps))
	rep.metric("outputs_identical", b2f(doc.OutputsIdentical))
	rep.metric("max_divergence", doc.MaxDivergence)
	return doc, rep, nil
}

// Adaptive is the registry wrapper: it runs the drift comparison and returns
// just the report (cmd/ppbench -exp adapt also writes the JSON document).
func Adaptive(cfg Config) (*Report, error) {
	_, rep, err := RunAdaptiveBench(cfg)
	return rep, err
}
