package bench

import (
	"fmt"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Ablation experiments quantify the design choices DESIGN.md calls out: the
// accuracy-budget dynamic program and the execution-order search of §6.2,
// the PPs-per-expression bound k of §6.1, and the model selection of §5.5.
// The paper does not publish these as tables; they justify its design.

// AblationBudget compares the §6.2 budget-allocation search against a
// uniform split on the multi-clause TRAF-20 queries.
func AblationBudget(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-budget",
		Title: "Accuracy-budget allocation: §6.2 search vs uniform split (a=0.95)"}
	tb := &table{header: []string{"query", "searched r", "uniform r", "searched plan", "uniform plan"}}
	var sumS, sumU float64
	n := 0
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		if len(query.Clauses(pred)) < 2 {
			continue // single-clause queries have nothing to allocate
		}
		_, u, err := h.NoPPlan(pred)
		if err != nil {
			return nil, err
		}
		base := optimizer.Options{Accuracy: 0.95, UDFCost: u, Domains: data.TrafficDomains()}
		searched, err := h.Opt.Optimize(pred, base)
		if err != nil {
			return nil, err
		}
		uniform := base
		uniform.DisableBudgetSearch = true
		flat, err := h.Opt.Optimize(pred, uniform)
		if err != nil {
			return nil, err
		}
		if !searched.Inject || !flat.Inject {
			continue
		}
		tb.add(q.ID, f3(searched.Reduction), f3(flat.Reduction),
			f2(searched.PlanCost), f2(flat.PlanCost))
		sumS += searched.PlanCost
		sumU += flat.PlanCost
		n++
	}
	rep.Lines = tb.render()
	if n > 0 {
		rep.addf("average plan cost: searched %.2f vs uniform %.2f (%.1f%% saved by the DP)",
			sumS/float64(n), sumU/float64(n), 100*(1-sumS/sumU))
	}
	return rep, nil
}

// AblationOrdering compares the cheapest-effective-first execution-order
// search against written order, measured by actual executed cluster time.
func AblationOrdering(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-order",
		Title: "PP execution order: cheapest-effective-first vs written order (a=0.95)"}
	tb := &table{header: []string{"query", "ordered cluster", "fixed cluster", "saving"}}
	var sumO, sumF float64
	n := 0
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		if len(query.Clauses(pred)) < 2 {
			continue
		}
		run := func(disable bool) (*engine.Result, *optimizer.Decision, error) {
			procs, u, derr := trafficProcs(h, pred)
			if derr != nil {
				return nil, nil, derr
			}
			dec, derr := h.Opt.Optimize(pred, optimizer.Options{
				Accuracy: 0.95, UDFCost: u, Domains: data.TrafficDomains(),
				DisableOrderSearch: disable,
			})
			if derr != nil {
				return nil, nil, derr
			}
			ops := []engine.Operator{&engine.Scan{Blobs: h.TestBlobs}}
			if dec.Inject {
				ops = append(ops, &engine.PPFilter{F: dec.Filter})
			}
			for _, p := range procs {
				ops = append(ops, &engine.Process{P: p})
			}
			ops = append(ops, &engine.Select{Pred: pred})
			res, derr := engine.Run(engine.Plan{Ops: ops}, engine.Config{})
			return res, dec, derr
		}
		ordered, decO, err := run(false)
		if err != nil {
			return nil, err
		}
		fixed, decF, err := run(true)
		if err != nil {
			return nil, err
		}
		if !decO.Inject || !decF.Inject {
			continue
		}
		saving := 1 - ordered.ClusterTime/fixed.ClusterTime
		tb.add(q.ID, f2(ordered.ClusterTime/1000)+"s", f2(fixed.ClusterTime/1000)+"s",
			fmt.Sprintf("%.1f%%", saving*100))
		sumO += ordered.ClusterTime
		sumF += fixed.ClusterTime
		n++
	}
	rep.Lines = tb.render()
	if n > 0 {
		rep.addf("total cluster time: ordered %.0f vs fixed %.0f (%.1f%% saved by ordering)",
			sumO, sumF, 100*(1-sumO/sumF))
	}
	return rep, nil
}

// AblationK sweeps the per-expression PP bound k over the ≥3-clause queries.
func AblationK(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "ablation-k",
		Title: "PPs-per-expression bound k: estimated reduction on ≥3-clause queries (a=0.95)"}
	tb := &table{header: []string{"query", "k=1", "k=2", "k=3", "k=4"}}
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		if len(query.Clauses(pred)) < 3 {
			continue
		}
		_, u, err := h.NoPPlan(pred)
		if err != nil {
			return nil, err
		}
		cells := []string{q.ID}
		for k := 1; k <= 4; k++ {
			dec, err := h.Opt.Optimize(pred, optimizer.Options{
				Accuracy: 0.95, UDFCost: u, MaxPPs: k, Domains: data.TrafficDomains(),
			})
			if err != nil {
				return nil, err
			}
			if dec.Inject {
				cells = append(cells, f3(dec.Reduction))
			} else {
				cells = append(cells, "-")
			}
		}
		tb.add(cells...)
	}
	rep.Lines = tb.render()
	return rep, nil
}

// AblationModelSelection compares §5.5's automatic model selection against
// every fixed approach on two datasets with opposite winners.
func AblationModelSelection(cfg Config) (*Report, error) {
	rep := &Report{ID: "ablation-model",
		Title: "Model selection (§5.5) vs fixed approaches: avg reduction at a=0.95"}
	tb := &table{header: []string{"dataset", "auto", "picked", "PCA+KDE", "PCA+SVM", "Raw+SVM"}}
	nCats := cfg.scale(5, 3)
	dsets := []datasetSpec{specs(cfg)[1], specs(cfg)[2]} // sun, ucf101
	for _, spec := range dsets {
		d := spec.make(cfg)
		cats := pickCategories(d, nCats, 60)
		var autoR float64
		pickedCounts := map[string]int{}
		fixed := map[string]float64{}
		for _, k := range cats {
			set := d.SetFor(k)
			rng := newRNG(cfg.Seed ^ uint64(k)*0xab)
			train, val, test := set.Split(rng, 0.6, 0.2)
			auto, err := core.Train("c", train, val, core.TrainConfig{Seed: cfg.Seed + uint64(k)})
			if err != nil {
				return nil, err
			}
			autoR += core.Evaluate(auto, test, 0.95).Reduction
			pickedCounts[auto.Approach]++
			for _, approach := range []string{"PCA+KDE", "PCA+SVM", "Raw+SVM"} {
				pp, err := core.Train("c", train, val, core.TrainConfig{
					Approach: approach, Seed: cfg.Seed + uint64(k)})
				if err != nil {
					return nil, err
				}
				fixed[approach] += core.Evaluate(pp, test, 0.95).Reduction
			}
		}
		n := float64(len(cats))
		picked := ""
		for a, c := range pickedCounts {
			picked += fmt.Sprintf("%s×%d ", a, c)
		}
		tb.add(d.Name, f3(autoR/n), picked,
			f3(fixed["PCA+KDE"]/n), f3(fixed["PCA+SVM"]/n), f3(fixed["Raw+SVM"]/n))
	}
	rep.Lines = tb.render()
	return rep, nil
}

// trafficProcs builds the UDF chain and cost for a predicate on the
// harness's stream.
func trafficProcs(h *TrafficHarness, pred query.Pred) ([]engine.Processor, float64, error) {
	plan, u, err := h.NoPPlan(pred)
	if err != nil {
		return nil, 0, err
	}
	var procs []engine.Processor
	for _, op := range plan.Ops {
		if p, ok := op.(*engine.Process); ok {
			procs = append(procs, p.P)
		}
	}
	return procs, u, nil
}
