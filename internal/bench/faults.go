package bench

import (
	"fmt"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/fault"
	"probpred/internal/online"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/udf"
)

// Faults is an extension experiment beyond the paper: the paper's safety
// argument (§1, §3) is that PPs never add false positives because the full
// plan still runs downstream — but a production Cosmos/SCOPE-style substrate
// also sees UDF task failures, stragglers, and PPs whose accuracy silently
// drifts. This experiment proves the reproduction degrades gracefully on
// both axes:
//
//  1. Fault sweep: transient faults and stragglers are injected into every
//     UDF of PP-accelerated TRAF queries at increasing rates, with engine
//     retries/backoff/timeouts enabled. Outputs must stay byte-identical to
//     the fault-free run (the injector is deterministic and transient bursts
//     are bounded below the attempt budget), while the retry work shows up
//     as cluster-time overhead — speed-up erodes smoothly, never cliffs, and
//     never costs correctness.
//
//  2. Accuracy watchdog: a PP trained on the prefix of a drifting stream
//     serves windows whose realized accuracy decays; the online watchdog
//     trips its circuit breaker after K consecutive misses, queries fall
//     back to the unmodified NoP plan (zero lost true positives by
//     construction), the clause retrains on fresh labels, and the PP
//     re-enters through probation.
func Faults(cfg Config) (*Report, error) {
	rep := &Report{ID: "faults",
		Title: "Fault tolerance: retries under UDF fault injection + PP accuracy watchdog under drift"}
	if err := faultSweep(cfg, rep); err != nil {
		return nil, err
	}
	rep.addf("")
	if err := watchdogDemo(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// sweepRetry is the policy the sweep runs under: the attempt budget exceeds
// the injector's transient burst cap, so every injected fault is absorbed.
var sweepRetry = engine.RetryPolicy{
	MaxAttempts:   6,
	BackoffBaseMS: 20,
	BackoffFactor: 2,
	RowTimeoutMS:  250,
}

// faultSweep injects faults at increasing rates into PP-accelerated queries
// and reports correctness and retained speed-up per rate.
func faultSweep(cfg Config, rep *Report) error {
	h, err := NewTrafficHarnessWithCorpus(cfg, optimizer.NewCorpus())
	if err != nil {
		return err
	}
	clauses := []string{"t=SUV", "c=red", "s>60"}
	for i, clause := range clauses {
		pp, err := h.TrainPP(clause, uint64(100+i))
		if err != nil {
			return err
		}
		h.Opt.Corpus().Add(pp)
	}
	queries := []struct {
		id   string
		pred string
	}{
		{"Q1", "t=SUV"},
		{"Q18", "t=SUV & c=red & s>60"},
	}
	rates := []float64{0, 0.01, 0.05, 0.10}
	rep.addf("-- fault sweep: transient+straggler injection into every UDF, retries on --")
	rep.addf("   (retry policy: %d attempts, %vms base backoff, %vms row timeout)",
		sweepRetry.MaxAttempts, sweepRetry.BackoffBaseMS, sweepRetry.RowTimeoutMS)
	tb := &table{header: []string{"query", "fault rate", "output", "speed-up vs NoP", "retry overhead"}}
	for _, q := range queries {
		pred := query.MustParse(q.pred)
		nopPlan, _, err := h.NoPPlan(pred)
		if err != nil {
			return err
		}
		nop, err := engine.Run(nopPlan, engine.Config{})
		if err != nil {
			return err
		}
		var clean *engine.Result
		for ri, rate := range rates {
			var inj *fault.Injector
			if rate > 0 {
				inj = fault.NewInjector(cfg.Seed ^ uint64(ri)*0xfa17)
				inj.SetDefault(fault.Spec{
					TransientRate:   rate,
					StragglerRate:   rate / 5,
					StragglerFactor: 10,
					MaxConsecutive:  3,
				})
			}
			plan, dec, err := faultyPPPlan(h, pred, inj)
			if err != nil {
				return err
			}
			if !dec.Inject {
				return fmt.Errorf("bench: faults: %s did not inject a PP", q.id)
			}
			res, err := engine.Run(plan, engine.Config{Retry: sweepRetry})
			if err != nil {
				return fmt.Errorf("bench: faults: %s at rate %v: %w", q.id, rate, err)
			}
			if rate == 0 {
				clean = res
				tb.add(q.id, "0% (ref)", "reference", f2(nop.ClusterTime/res.ClusterTime)+"x", "-")
				continue
			}
			output := "IDENTICAL"
			if !rowsIdentical(clean.Rows, res.Rows) {
				output = "DIVERGED"
			}
			overhead := (res.ClusterTime - clean.ClusterTime) / clean.ClusterTime
			tb.add(q.id, fmt.Sprintf("%.0f%%", rate*100), output,
				f2(nop.ClusterTime/res.ClusterTime)+"x", fmt.Sprintf("+%.1f%%", overhead*100))
		}
	}
	rep.Lines = append(rep.Lines, tb.render()...)

	// Without retries, the same 10% injection kills the query outright —
	// the failure is at least attributed to its operator and stage.
	inj := fault.NewInjector(cfg.Seed ^ 3*0xfa17)
	inj.SetDefault(fault.Spec{TransientRate: 0.10, MaxConsecutive: 3})
	pred := query.MustParse("t=SUV")
	plan, _, err := faultyPPPlan(h, pred, inj)
	if err != nil {
		return err
	}
	if _, err := engine.Run(plan, engine.Config{}); err != nil {
		rep.addf("without retries, 10%% injection fails fast: %v", err)
	} else {
		rep.addf("without retries, 10%% injection unexpectedly succeeded")
	}
	return nil
}

// faultyPPPlan is PPPlan with the UDF pipeline optionally wrapped in the
// injector's fault model.
func faultyPPPlan(h *TrafficHarness, pred query.Pred, inj *fault.Injector) (engine.Plan, *optimizer.Decision, error) {
	procs, err := udf.TrafficPipeline(pred, 0, h.seed)
	if err != nil {
		return engine.Plan{}, nil, err
	}
	u := udf.PipelineCost(procs)
	dec, err := h.Opt.Optimize(pred, optimizer.Options{
		Accuracy: 0.95,
		UDFCost:  u,
		Domains:  data.TrafficDomains(),
	})
	if err != nil {
		return engine.Plan{}, nil, err
	}
	if inj != nil {
		procs = udf.FaultyPipeline(procs, inj)
	}
	ops := []engine.Operator{&engine.Scan{Blobs: h.TestBlobs}}
	if dec.Inject {
		ops = append(ops, &engine.PPFilter{F: dec.Filter})
	}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, dec, nil
}

// rowsIdentical reports whether two result sets match row for row: same
// order, same blobs, same materialized column values.
func rowsIdentical(a, b []engine.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Blob.ID != b[i].Blob.ID || len(a[i].Cols) != len(b[i].Cols) {
			return false
		}
		for col, v := range a[i].Cols {
			if got, ok := b[i].Cols[col]; !ok || got != v {
				return false
			}
		}
	}
	return true
}

// watchdogDemo runs the accuracy watchdog over a drifting stream: stale PP
// accuracy decays, the breaker trips, queries fall back (losing nothing),
// the clause retrains on fresh labels and re-enters through probation.
func watchdogDemo(cfg Config, rep *Report) error {
	const (
		clause = "t=SUV"
		target = 0.95
	)
	rows := cfg.scale(24000, 8000)
	stream := data.Traffic(data.TrafficConfig{Rows: rows, Seed: cfg.Seed ^ 0xdead, Drift: 1.0})
	pred := query.MustParse(clause)
	procs, err := udf.TrafficPipeline(pred, 0, cfg.Seed)
	if err != nil {
		return err
	}
	u := udf.PipelineCost(procs)
	prefix := rows / 6
	windows := 8
	windowSize := (rows - prefix) / windows
	sys, err := online.New(online.Config{
		Clauses:      []string{clause},
		MinLabels:    rows / 24,
		RetrainEvery: rows * 10, // only the watchdog triggers retraining here
		BufferCap:    rows / 8,  // sliding buffer keeps retraining data fresh
		Train:        core.TrainConfig{Approach: "Raw+SVM", SVM: svmConfigForTraffic(), Seed: cfg.Seed},
		Domains:      data.TrafficDomains(),
		Seed:         cfg.Seed,
		// FreshLabels spans more than one window, so a trip yields at least
		// one visible NoP-fallback window before retraining completes; the
		// margin tolerates the residual one-window drift lag a freshly
		// retrained PP cannot avoid.
		Watchdog: online.WatchdogConfig{K: 2, Margin: 0.03, FreshLabels: windowSize * 3 / 2},
	})
	if err != nil {
		return err
	}
	for _, b := range stream[:prefix] {
		if err := sys.Observe(b, data.TrafficLookup(b)); err != nil {
			return err
		}
	}
	rep.addf("-- accuracy watchdog under input drift (clause %s, target a=%.2f, K=2) --", clause, target)
	tb := &table{header: []string{"window", "mode", "observed acc", "lost positives", "breaker after"}}
	trips, reenabled := 0, false
	for w := 0; w < windows; w++ {
		lo := prefix + w*windowSize
		window := stream[lo : lo+windowSize]
		set, err := data.TrafficSet(window, pred)
		if err != nil {
			return err
		}
		dec, err := sys.Decide(pred, target, u)
		if err != nil {
			return err
		}
		mode, acc, lost := "NoP fallback", 1.0, 0
		if dec.Inject {
			mode = "PP injected"
			posPass, pos := 0, 0
			for i, b := range set.Blobs {
				if !set.Labels[i] {
					continue
				}
				pos++
				if pass, _ := dec.Filter.Test(b); pass {
					posPass++
				}
			}
			if pos > 0 {
				acc = float64(posPass) / float64(pos)
			}
			lost = pos - posPass
		}
		tripsBefore := sys.Trips
		stateBefore := sys.Breaker(clause)
		sys.ReportAccuracy(dec, acc, target)
		if sys.Trips > tripsBefore {
			trips = sys.Trips
		}
		// The window's UDF outputs label its blobs either way (Figure 3b);
		// after a trip these are the fresh labels retraining waits for.
		for _, b := range window {
			if err := sys.Observe(b, data.TrafficLookup(b)); err != nil {
				return err
			}
		}
		after := sys.Breaker(clause)
		if stateBefore != online.BreakerClosed && after == online.BreakerClosed {
			reenabled = true
		}
		tb.add(fmt.Sprintf("%d", w+1), mode, f3(acc), fmt.Sprintf("%d", lost), after.String())
	}
	rep.Lines = append(rep.Lines, tb.render()...)
	rep.addf("trips=%d retrainings=%d re-enabled=%v (fallback windows lose zero true positives by construction)",
		trips, sys.Trainings-1, reenabled)
	return nil
}
