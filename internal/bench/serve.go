package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"probpred/internal/blob"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/query"
	"probpred/internal/serve"
	"probpred/internal/udf"
)

// Serve replays the TRAF20 workload through internal/serve twice — once with
// the PP score cache disabled, once enabled — and compares evaluation counts
// and outputs. It is not a paper experiment: it validates and tracks the
// serving layer's contract (DESIGN.md "Serving & caching") and backs
// BENCH_serve.json, which CI archives and gates on (eval_ratio >= 2,
// outputs_identical). The disabled variant routes every lookup through the
// same cache plumbing but stores nothing, so its miss counter is an exact
// count of PP score evaluations an uncached server performs.

// ServeVariant is one replay's counters (cached or uncached score cache).
type ServeVariant struct {
	Mode     string  `json:"mode"`
	WallMS   float64 `json:"wall_ms"`
	Sessions uint64  `json:"sessions"`
	// PlanHits / PlanMisses count plan-cache outcomes; hits skipped the
	// optimizer search.
	PlanHits   uint64 `json:"plan_hits"`
	PlanMisses uint64 `json:"plan_misses"`
	// ScoreEvals is the number of per-(PP, blob) score computations actually
	// performed (= score-cache misses; with the cache disabled, every lookup).
	ScoreEvals uint64 `json:"score_evals"`
	// ScoreHits counts evaluations avoided by the score cache.
	ScoreHits    uint64  `json:"score_hits"`
	ScoreHitRate float64 `json:"score_hit_rate"`
	ScoreEntries int     `json:"score_entries"`
}

// ServeDoc is the machine-readable report written to BENCH_serve.json.
type ServeDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	// Queries is the distinct query count (TRAF20); Sessions = Queries×Rounds.
	Queries     int     `json:"queries"`
	Rounds      int     `json:"rounds"`
	Sessions    int     `json:"sessions"`
	Concurrency int     `json:"concurrency"`
	Workers     int     `json:"workers"`
	Blobs       int     `json:"blobs"`
	Accuracy    float64 `json:"accuracy"`

	Uncached ServeVariant `json:"uncached"`
	Cached   ServeVariant `json:"cached"`

	// EvalRatio is uncached score evaluations over cached ones — how many
	// times fewer PP scores the shared cache computes on this workload. CI
	// requires >= 2.
	EvalRatio float64 `json:"eval_ratio"`
	// OutputsIdentical reports byte-identical rendered results (rows, row
	// order, virtual costs) across the two variants. CI requires true.
	OutputsIdentical bool `json:"outputs_identical"`
}

// Write serders the document as indented JSON.
func (d *ServeDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// trafficBuilder adapts the traffic harness to serve.QueryBuilder and
// serve.CorpusBuilder: the UDF pipeline downstream of the PP is the detector
// plus one UDF per referenced column, exactly as PPPlan assembles it. As a
// CorpusBuilder the scanned blob slice is injected per call — that is what
// the sharded coordinator partitions.
type trafficBuilder struct{ h *TrafficHarness }

func (b trafficBuilder) UDFCost(pred query.Pred) (float64, error) {
	procs, err := udf.TrafficPipeline(pred, 0, b.h.seed)
	if err != nil {
		return 0, err
	}
	return udf.PipelineCost(procs), nil
}

func (b trafficBuilder) Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	return b.BuildOver(b.h.TestBlobs, pred, filter)
}

func (b trafficBuilder) BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	procs, err := udf.TrafficPipeline(pred, 0, b.h.seed)
	if err != nil {
		return engine.Plan{}, err
	}
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	if filter != nil {
		ops = append(ops, &engine.PPFilter{F: filter})
	}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, nil
}

// serveWorkload repeats TRAF20 for rounds rounds with distinct session ids.
// Repetition is the realistic part: production queries recur, and recurrence
// is what the plan cache converts into hits.
func serveWorkload(rounds int) []serve.WorkloadQuery {
	var out []serve.WorkloadQuery
	for r := 0; r < rounds; r++ {
		for _, q := range TRAF20 {
			out = append(out, serve.WorkloadQuery{
				ID:   fmt.Sprintf("%s.r%d", q.ID, r+1),
				Pred: q.Pred,
			})
		}
	}
	return out
}

// renderServeResponses flattens responses to a canonical text form — session
// id, row count, virtual cluster time, output blob ids — the byte-comparison
// primitive behind OutputsIdentical.
func renderServeResponses(resps []*serve.Response) string {
	var sb strings.Builder
	for _, r := range resps {
		if r == nil {
			sb.WriteString("<nil>\n")
			continue
		}
		fmt.Fprintf(&sb, "%s rows=%d cluster=%.6f ids=", r.ID, len(r.Result.Rows), r.Result.ClusterTime)
		for i, row := range r.Result.Rows {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", row.Blob.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RunServe builds the traffic harness, replays the workload against an
// uncached and a cached server, and returns the JSON document plus a rendered
// report.
func RunServe(cfg Config) (*ServeDoc, *Report, error) {
	const (
		accuracy    = 0.95
		concurrency = 4
		workers     = 4
	)
	rounds := cfg.scale(3, 2)
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, nil, err
	}
	workload := serveWorkload(rounds)

	runVariant := func(mode string, disable bool) (ServeVariant, string, error) {
		srv, err := serve.New(serve.Config{
			Optimizer:         h.Opt,
			Builder:           trafficBuilder{h},
			Accuracy:          accuracy,
			Domains:           data.TrafficDomains(),
			MaxConcurrent:     concurrency,
			Exec:              engine.Config{Workers: workers},
			DisableScoreCache: disable,
			Metrics:           cfg.Metrics,
			Obs:               cfg.Obs,
		})
		if err != nil {
			return ServeVariant{}, "", err
		}
		start := time.Now()
		resps, err := srv.Replay(workload, concurrency)
		if err != nil {
			return ServeVariant{}, "", fmt.Errorf("bench: serve replay (%s): %w", mode, err)
		}
		st := srv.Stats()
		v := ServeVariant{
			Mode:         mode,
			WallMS:       float64(time.Since(start).Microseconds()) / 1000,
			Sessions:     st.Sessions,
			PlanHits:     st.PlanHits,
			PlanMisses:   st.PlanMisses,
			ScoreEvals:   st.ScoreMisses,
			ScoreHits:    st.ScoreHits,
			ScoreEntries: st.ScoreEntries,
		}
		if lookups := st.ScoreHits + st.ScoreMisses; lookups > 0 {
			v.ScoreHitRate = float64(st.ScoreHits) / float64(lookups)
		}
		return v, renderServeResponses(resps), nil
	}

	uncached, renderU, err := runVariant("uncached", true)
	if err != nil {
		return nil, nil, err
	}
	cached, renderC, err := runVariant("cached", false)
	if err != nil {
		return nil, nil, err
	}

	doc := &ServeDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Queries:     len(TRAF20),
		Rounds:      rounds,
		Sessions:    len(workload),
		Concurrency: concurrency,
		Workers:     workers,
		Blobs:       len(h.TestBlobs),
		Accuracy:    accuracy,
		Uncached:    uncached,
		Cached:      cached,

		OutputsIdentical: renderU == renderC,
	}
	if cached.ScoreEvals > 0 {
		doc.EvalRatio = float64(uncached.ScoreEvals) / float64(cached.ScoreEvals)
	}

	rep := &Report{ID: "serve", Title: fmt.Sprintf(
		"Concurrent serving: %d sessions (%d queries x %d rounds), score cache off vs on", len(workload), len(TRAF20), rounds)}
	tb := &table{header: []string{"mode", "wall ms", "sessions", "plan hit/miss", "score evals", "score hits", "hit rate"}}
	for _, v := range []ServeVariant{uncached, cached} {
		tb.add(v.Mode, f1(v.WallMS), fmt.Sprintf("%d", v.Sessions),
			fmt.Sprintf("%d/%d", v.PlanHits, v.PlanMisses),
			fmt.Sprintf("%d", v.ScoreEvals), fmt.Sprintf("%d", v.ScoreHits),
			f3(v.ScoreHitRate))
	}
	rep.Lines = tb.render()
	rep.Lines = append(rep.Lines, "",
		fmt.Sprintf("eval ratio (uncached/cached): %.2fx   outputs identical: %v",
			doc.EvalRatio, doc.OutputsIdentical))
	rep.metric("eval_ratio", doc.EvalRatio)
	rep.metric("outputs_identical", b2f(doc.OutputsIdentical))
	rep.metric("plan_hit_rate", float64(cached.PlanHits)/float64(cached.PlanHits+cached.PlanMisses))
	rep.metric("score_hit_rate", cached.ScoreHitRate)
	return doc, rep, nil
}

// Serve is the registry wrapper: it runs the replay comparison and returns
// just the report (cmd/ppbench -serve also writes the JSON document).
func Serve(cfg Config) (*Report, error) {
	_, rep, err := RunServe(cfg)
	return rep, err
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
