package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"probpred/internal/obs"
)

// JSONSchema identifies the BENCH_pp.json document format; bump on
// incompatible changes so downstream tooling can dispatch.
const JSONSchema = "probpred-bench/v1"

// JSONDocument is the machine-readable benchmark report `ppbench -json`
// writes (BENCH_pp.json): per-experiment headline metrics, trace summaries,
// raw report lines, and enough environment metadata to compare runs across
// machines and Go versions.
type JSONDocument struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	// WallMS is the whole run's real duration.
	WallMS float64 `json:"wall_ms"`
	// Runtime snapshots the Go runtime at the end of the run (versions,
	// CPU counts, allocation and GC totals, scheduler latency).
	Runtime     obs.RuntimeSnapshot `json:"runtime"`
	Experiments []JSONExperiment    `json:"experiments"`
}

// JSONExperiment is one experiment's machine-readable record.
type JSONExperiment struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	// Metrics are the experiment's headline numbers (speedups, latencies,
	// accuracies) — the same values Lines formats for humans.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Trace aggregates the engine/optimizer spans the experiment emitted:
	// virtual cost and wall time per operator, plan-search counters.
	Trace *obs.Summary `json:"trace,omitempty"`
	Lines []string     `json:"lines"`
}

// NewJSONDocument starts a document for one ppbench run.
func NewJSONDocument(seed uint64, quick bool) *JSONDocument {
	return &JSONDocument{
		Schema:      JSONSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
		Quick:       quick,
	}
}

// RunTraced executes one experiment with a fresh trace collector attached
// and returns both the human report and its JSON record.
func RunTraced(id string, cfg Config) (*Report, JSONExperiment, error) {
	col := obs.NewCollector()
	cfg.Obs = obs.New(col)
	start := time.Now()
	rep, err := Run(id, cfg)
	if err != nil {
		return nil, JSONExperiment{}, err
	}
	wall := time.Since(start)
	sum := col.Summary()
	exp := JSONExperiment{
		ID:      rep.ID,
		Title:   rep.Title,
		WallMS:  float64(wall.Nanoseconds()) / 1e6,
		Metrics: rep.Metrics,
		Lines:   rep.Lines,
	}
	if sum.Spans > 0 || sum.Events > 0 || len(sum.Metrics) > 0 {
		exp.Trace = &sum
	}
	return rep, exp, nil
}

// Write finalizes the document (runtime snapshot, total wall time) and
// writes it as indented JSON, verifying the encoding round-trips before any
// byte reaches w.
func (d *JSONDocument) Write(w io.Writer, wall time.Duration) error {
	d.WallMS = float64(wall.Nanoseconds()) / 1e6
	d.Runtime = obs.TakeRuntimeSnapshot()
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding JSON report: %w", err)
	}
	if !json.Valid(buf) {
		return fmt.Errorf("bench: generated JSON report is malformed")
	}
	var probe JSONDocument
	if err := json.Unmarshal(buf, &probe); err != nil {
		return fmt.Errorf("bench: JSON report does not round-trip: %w", err)
	}
	if _, err := w.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("bench: writing JSON report: %w", err)
	}
	return nil
}
