package bench

import (
	"fmt"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/query"
)

// Drift is an extension experiment beyond the paper: the paper's §3 notes
// that PPs do not support UDFs that adapt over time, and A.5 handles
// mis-estimated reductions at runtime — but sensor/illumination drift in the
// *inputs* is the common failure in deployed camera systems. This
// experiment trains a PP on the stream prefix, then tracks its empirical
// accuracy and reduction over successive windows of a drifting stream,
// with and without periodic recalibration (threshold re-anchoring on a
// small freshly-labeled sample; PP.Recalibrate — no retraining).
func Drift(cfg Config) (*Report, error) {
	rep := &Report{ID: "drift",
		Title: "Input drift: stale thresholds vs periodic recalibration (a target 0.95, no retraining)"}
	rows := cfg.scale(24000, 8000)
	stream := data.Traffic(data.TrafficConfig{Rows: rows, Seed: cfg.Seed, Drift: 2.5})
	clause := "t=SUV"
	pred := query.MustParse(clause)
	labeled, err := data.TrafficSet(stream, pred)
	if err != nil {
		return nil, err
	}
	prefix := rows / 6
	prefixSet := blob.Set{Blobs: labeled.Blobs[:prefix], Labels: labeled.Labels[:prefix]}
	train, val, _ := prefixSet.Split(newRNG(cfg.Seed^0xd41f7), 0.8, 0.2)
	stale, err := core.Train(clause, train, val, core.TrainConfig{
		Approach: "Raw+SVM", Seed: cfg.Seed, SVM: svmConfigForTraffic()})
	if err != nil {
		return nil, err
	}
	recal, err := core.Train(clause, train, val, core.TrainConfig{
		Approach: "Raw+SVM", Seed: cfg.Seed, SVM: svmConfigForTraffic()})
	if err != nil {
		return nil, err
	}

	const a = 0.95
	windows := 5
	windowSize := (rows - prefix) / windows
	tb := &table{header: []string{"window", "stale acc", "stale r", "recal acc", "recal r"}}
	var staleAccSum, recalAccSum float64
	for w := 0; w < windows; w++ {
		lo := prefix + w*windowSize
		hi := lo + windowSize
		window := blob.Set{Blobs: labeled.Blobs[lo:hi], Labels: labeled.Labels[lo:hi]}
		// Recalibrate on a small labeled sample from the start of the
		// window (in a live system, the plan's side-output labels).
		sampleN := windowSize / 8
		sample := blob.Set{Blobs: window.Blobs[:sampleN], Labels: window.Labels[:sampleN]}
		if sample.Positives() > 0 && sample.Positives() < sample.Len() {
			if err := recal.Recalibrate(sample); err != nil {
				return nil, err
			}
		}
		rest := blob.Set{Blobs: window.Blobs[sampleN:], Labels: window.Labels[sampleN:]}
		sm := core.Evaluate(stale, rest, a)
		rm := core.Evaluate(recal, rest, a)
		tb.add(fmt.Sprintf("%d", w+1), f3(sm.Accuracy), f3(sm.Reduction),
			f3(rm.Accuracy), f3(rm.Reduction))
		staleAccSum += sm.Accuracy
		recalAccSum += rm.Accuracy
	}
	rep.Lines = tb.render()
	rep.addf("average accuracy: stale %.3f vs recalibrated %.3f (target %.2f)",
		staleAccSum/float64(windows), recalAccSum/float64(windows), a)
	return rep, nil
}
