package bench

import (
	"strings"
	"testing"
)

// TestFaultsScenario runs the full faults experiment in quick mode and checks
// the acceptance criteria: every injected-fault run stays byte-identical to
// the fault-free reference, and the watchdog trips under drift while fallback
// windows lose zero true positives.
func TestFaultsScenario(t *testing.T) {
	rep, err := Faults(quick)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(rep.Lines, "\n")
	if strings.Contains(text, "DIVERGED") {
		t.Fatalf("fault sweep diverged from fault-free output:\n%s", text)
	}
	if n := strings.Count(text, "IDENTICAL"); n != 6 {
		t.Fatalf("identical runs = %d, want 6 (2 queries x 3 nonzero rates):\n%s", n, text)
	}
	if !strings.Contains(text, "without retries, 10% injection fails fast") {
		t.Fatalf("expected retry-less run to fail:\n%s", text)
	}
	if !strings.Contains(text, "open") {
		t.Fatalf("watchdog never tripped under drift:\n%s", text)
	}
	if strings.Contains(text, "trips=0") {
		t.Fatalf("watchdog reported zero trips:\n%s", text)
	}
	// Every fallback window must lose zero positives: any "NoP fallback" row
	// reports lost=0 by construction; assert the table carries such a row.
	if !strings.Contains(text, "NoP fallback") {
		t.Fatalf("no fallback window in watchdog demo:\n%s", text)
	}
	for _, line := range rep.Lines {
		if strings.Contains(line, "NoP fallback") && !strings.Contains(line, " 0 ") {
			t.Fatalf("fallback window lost positives: %s", line)
		}
	}
}
