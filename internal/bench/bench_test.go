package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"probpred/internal/engine"
	"probpred/internal/query"
)

var quick = Config{Seed: 42, Quick: true}

func TestTableFormatter(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("xx", "y")
	lines := tb.render()
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quick); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrafficHarness(t *testing.T) {
	h, err := NewTrafficHarness(quick)
	if err != nil {
		t.Fatal(err)
	}
	if h.Opt.Corpus().Size() != 32 {
		t.Fatalf("corpus size = %d, want 32 (as in §8.2)", h.Opt.Corpus().Size())
	}
	if len(h.TrainBlobs) == 0 || len(h.TestBlobs) == 0 {
		t.Fatal("empty harness")
	}
	// Every TRAF-20 predicate must parse and be coverable enough to run.
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		plan, dec, err := h.PPPlan(pred, 0.95)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if len(plan.Ops) < 3 {
			t.Fatalf("%s: degenerate plan", q.ID)
		}
		if dec.NumCandidates == 0 {
			t.Errorf("%s: no PP candidates — corpus should cover every predicate", q.ID)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	h, err := NewTrafficHarness(quick)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fig10With(h, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < len(TRAF20) {
		t.Fatalf("report too short: %d lines", len(rep.Lines))
	}
	// Headline shape checks on a couple of queries.
	pred := query.MustParse("t=SUV & c=red & i=pt335 & o=pt211") // Q20, very selective
	nopPlan, _, err := h.NoPPlan(pred)
	if err != nil {
		t.Fatal(err)
	}
	nop, err := engine.Run(nopPlan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, dec, err := h.PPPlan(pred, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("Q20 should inject PPs")
	}
	pp, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := nop.ClusterTime / pp.ClusterTime
	if speedup < 1.5 {
		t.Fatalf("Q20 speed-up = %.2fx, want >= 1.5x for a 4-clause selective predicate", speedup)
	}
	if acc := retained(nop, pp); acc < 0.75 {
		t.Fatalf("Q20 accuracy = %v at a=0.95 (4 PPs compound)", acc)
	}
}

func TestFig10AccuracyAtA1(t *testing.T) {
	// At a=1 the validation-set guarantee is exact; on the disjoint test
	// stream the retained fraction must still be very high.
	h, err := NewTrafficHarness(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []string{"Q1", "Q4", "Q10"} {
		var predStr string
		for _, q := range TRAF20 {
			if q.ID == qid {
				predStr = q.Pred
			}
		}
		pred := query.MustParse(predStr)
		nopPlan, _, err := h.NoPPlan(pred)
		if err != nil {
			t.Fatal(err)
		}
		nop, err := engine.Run(nopPlan, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := h.PPPlan(pred, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := engine.Run(plan, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if acc := retained(nop, pp); acc < 0.9 {
			t.Errorf("%s: accuracy %v at a=1.0, want >= 0.9", qid, acc)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	rep, err := Table8(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Last row is PP; its normalized 100% latency must beat NoP's 1.00.
	var nopLine, ppLine string
	for _, l := range rep.Lines {
		if strings.HasPrefix(l, "NoP") {
			nopLine = l
		}
		if strings.HasPrefix(l, "PP") {
			ppLine = l
		}
	}
	if nopLine == "" || ppLine == "" {
		t.Fatalf("missing rows:\n%s", rep)
	}
	nopCells := strings.Fields(nopLine)
	ppCells := strings.Fields(ppLine)
	if nopCells[len(nopCells)-1] != "1.00" {
		t.Fatalf("NoP 100%% latency not normalized to 1.00: %q", nopLine)
	}
	if ppCells[len(ppCells)-1] >= nopCells[len(nopCells)-1] {
		t.Fatalf("PP latency %s not below NoP %s", ppCells[len(ppCells)-1], nopCells[len(nopCells)-1])
	}
}

func TestTable9Shape(t *testing.T) {
	rep, err := Table9(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"Q4", "Q8", "Q20", "Avg."} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing row %q in:\n%s", want, out)
		}
	}
}

func TestTable10Shape(t *testing.T) {
	rep, err := Table10(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "full (32 PPs)") || !strings.Contains(out, "half (") {
		t.Fatalf("missing corpora:\n%s", out)
	}
	if !strings.Contains(out, "#plans=") || !strings.Contains(out, "picked:") {
		t.Fatalf("missing plan details:\n%s", out)
	}
}

func TestTable12Shape(t *testing.T) {
	rep, err := Table12(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "coral") || !strings.Contains(out, "square") {
		t.Fatalf("missing streams:\n%s", out)
	}
}

func TestMicroExperimentsRun(t *testing.T) {
	// Smoke-run the remaining experiments at quick scale; shape assertions
	// on their content live in the focused tests below.
	for _, id := range []string{"table5", "fig15"} {
		rep, err := Run(id, quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Lines) < 3 {
			t.Fatalf("%s: too short:\n%s", id, rep)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, ds := range []string{"lshtc", "sun", "ucf101", "coco", "imagenet"} {
		if !strings.Contains(out, ds) {
			t.Fatalf("missing dataset %s:\n%s", ds, out)
		}
	}
}

func TestTable4KDEBeatsSVMOnUCF(t *testing.T) {
	rep, err := Table4(quick)
	if err != nil {
		t.Fatal(err)
	}
	var kde, rawsvm float64
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) < 5 || cells[0] != "ucf101" {
			continue
		}
		switch cells[1] {
		case "PCA+KDE":
			kde = atof(t, cells[2]) // r(1]
		case "Raw+SVM":
			rawsvm = atof(t, cells[2])
		}
	}
	if kde == 0 {
		t.Fatalf("rows missing:\n%s", rep)
	}
	if kde <= rawsvm {
		t.Fatalf("PCA+KDE (%v) should beat Raw+SVM (%v) on UCF101 (Table 4 shape)", kde, rawsvm)
	}
}

func TestTable6PPBeatsJoglekar(t *testing.T) {
	rep, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// On every dataset block, the PP row should dominate the Joglekar row.
	var ppVals, jogVals []float64
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) < 4 {
			continue
		}
		switch cells[0] {
		case "PP":
			for _, c := range cells[1:4] {
				ppVals = append(ppVals, atof(t, c))
			}
		case "Joglekar":
			for _, c := range cells[1:4] {
				jogVals = append(jogVals, atof(t, c))
			}
		}
	}
	if len(ppVals) == 0 || len(ppVals) != len(jogVals) {
		t.Fatalf("rows missing:\n%s", rep)
	}
	wins := 0
	for i := range ppVals {
		if ppVals[i] > jogVals[i] {
			wins++
		}
	}
	if wins < len(ppVals)*2/3 {
		t.Fatalf("PP beat Joglekar on only %d/%d cells:\n%s", wins, len(ppVals), rep)
	}
}

func TestTable13MoreDataHelps(t *testing.T) {
	rep, err := Table13(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 5 {
		t.Fatalf("too short:\n%s", rep)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationBudgetDPHelps(t *testing.T) {
	rep, err := AblationBudget(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "saved by the DP") {
		t.Fatalf("missing summary:\n%s", out)
	}
	// The searched allocation can never be worse than the uniform one —
	// uniform is one point of the search space.
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) != 5 || !strings.HasPrefix(cells[0], "Q") {
			continue
		}
		searched, uniform := atof(t, cells[3]), atof(t, cells[4])
		if searched > uniform+1e-9 {
			t.Fatalf("searched plan cost %v worse than uniform %v on %s", searched, uniform, cells[0])
		}
	}
}

func TestAblationOrderingNeverHurts(t *testing.T) {
	rep, err := AblationOrdering(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) != 4 || !strings.HasPrefix(cells[0], "Q") {
			continue
		}
		saving := strings.TrimSuffix(cells[3], "%")
		if atof(t, saving) < -1 {
			t.Fatalf("ordering hurt on %s: %s", cells[0], l)
		}
	}
}

func TestAblationKMonotone(t *testing.T) {
	rep, err := AblationK(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) != 5 || !strings.HasPrefix(cells[0], "Q") {
			continue
		}
		prev := -1.0
		for _, c := range cells[1:] {
			if c == "-" {
				continue
			}
			v := atof(t, c)
			if v < prev-1e-9 {
				t.Fatalf("reduction not monotone in k on %s: %s", cells[0], l)
			}
			prev = v
		}
	}
}

func TestAblationModelSelectionCompetitive(t *testing.T) {
	rep, err := AblationModelSelection(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Auto selection must come within 90% of the best fixed approach.
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) < 6 || (cells[0] != "sun" && cells[0] != "ucf101") {
			continue
		}
		auto := atof(t, cells[1])
		best := 0.0
		for _, c := range cells[len(cells)-3:] {
			if v := atof(t, c); v > best {
				best = v
			}
		}
		if auto < 0.9*best {
			t.Fatalf("auto selection %v far below best fixed %v on %s", auto, best, cells[0])
		}
	}
}

func TestCoverageDegradesGracefully(t *testing.T) {
	rep, err := Coverage(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Parse the covered counts per corpus row; full must cover the most
	// and the full corpus must cover nearly everything (§8.2's closing
	// claim: the per-clause corpus spans the whole predicate space).
	counts := map[string]float64{}
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) < 4 {
			continue
		}
		switch cells[0] {
		case "full", "half", "quarter":
			for _, c := range cells[1:] {
				if !strings.Contains(c, "/") {
					continue
				}
				frac := strings.Split(c, "/")
				counts[cells[0]] = atof(t, frac[0]) / atof(t, frac[1])
				break
			}
		}
	}
	if len(counts) != 3 {
		t.Fatalf("rows missing:\n%s", rep)
	}
	if counts["full"] < 0.9 {
		t.Fatalf("full corpus covers only %v of ad-hoc predicates", counts["full"])
	}
	if counts["full"] < counts["half"] || counts["half"] < counts["quarter"] {
		t.Fatalf("coverage not monotone in corpus size: %v", counts)
	}
}

func TestTable7Shapes(t *testing.T) {
	rep, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	// Every TRAF-20 query appears, with the expected shapes for a few.
	for _, q := range TRAF20 {
		if !strings.Contains(out, q.ID+" ") && !strings.Contains(out, q.ID+"\t") {
			t.Fatalf("missing %s:\n%s", q.ID, out)
		}
	}
	for _, l := range rep.Lines {
		cells := strings.Fields(l)
		if len(cells) < 4 {
			continue
		}
		switch cells[0] {
		case "Q7": // s>60 & s<65: numeric range conjunction
			if cells[2] != "NRC" {
				t.Fatalf("Q7 shape = %s", cells[2])
			}
		case "Q14": // conjunction with a disjunction
			if !strings.Contains(cells[2], "D") || !strings.Contains(cells[2], "C") {
				t.Fatalf("Q14 shape = %s", cells[2])
			}
		case "Q20":
			sel := atof(t, cells[3])
			if sel > 0.01 {
				t.Fatalf("Q20 selectivity = %v, want very small", sel)
			}
		}
	}
}

func TestTable2Runs(t *testing.T) {
	rep, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 6 {
		t.Fatalf("too short:\n%s", rep)
	}
	for _, approach := range []string{"SVM", "KDE", "DNN", "PCA+SVM"} {
		if !strings.Contains(rep.String(), approach) {
			t.Fatalf("missing %s:\n%s", approach, rep)
		}
	}
}

func TestDriftRecalibrationHelps(t *testing.T) {
	rep, err := Drift(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Parse the summary line: recalibrated accuracy must beat stale by a
	// wide margin under drift.
	var stale, recal float64
	for _, l := range rep.Lines {
		if !strings.HasPrefix(l, "average accuracy:") {
			continue
		}
		if _, err := fmt.Sscanf(l, "average accuracy: stale %f vs recalibrated %f", &stale, &recal); err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
	}
	if recal == 0 {
		t.Fatalf("summary missing:\n%s", rep)
	}
	if recal < stale+0.1 {
		t.Fatalf("recalibration did not help enough: stale %v recal %v", stale, recal)
	}
	if recal < 0.75 {
		t.Fatalf("recalibrated accuracy %v too low", recal)
	}
}
