package bench

import (
	"testing"

	"probpred/internal/engine"
)

// The hot-path benchmarks time one full pass over the scoring set per
// iteration, scalar versus batch, per approach. CI runs them at
// -benchtime=1x as a smoke test; locally run with -benchtime=... for real
// numbers.

func benchmarkScore(b *testing.B, spec hotpathSpec) {
	pp, blobs, err := hotpathPP(spec, 600, 2048, 42)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(blobs))
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, bl := range blobs {
				out[j] = pp.Score(bl)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pp.ScoreBatch(blobs, out)
		}
	})
}

func BenchmarkPPScoreFHSVM(b *testing.B)  { benchmarkScore(b, hotpathSpec{"FH+SVM", 2000}) }
func BenchmarkPPScorePCAKDE(b *testing.B) { benchmarkScore(b, hotpathSpec{"PCA+KDE", 64}) }
func BenchmarkPPScoreDNN(b *testing.B)    { benchmarkScore(b, hotpathSpec{"DNN", 64}) }

// BenchmarkPPFilterParallel times the PPFilter operator end to end under
// Workers=4, with the batch path (TestBatch per chunk) and with it hidden.
func BenchmarkPPFilterParallel(b *testing.B) {
	pp, blobs, err := hotpathPP(hotpathSpec{"FH+SVM", 2000}, 600, 2048, 42)
	if err != nil {
		b.Fatal(err)
	}
	filter := &hotpathFilter{pp: pp, th: pp.Threshold(0.95), cost: pp.Cost()}
	run := func(b *testing.B, f engine.BlobFilter) {
		plan := engine.Plan{Ops: []engine.Operator{
			&engine.Scan{Blobs: blobs},
			&engine.PPFilter{F: f},
		}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(plan, engine.Config{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("scalar", func(b *testing.B) { run(b, scalarOnlyFilter{filter}) })
	b.Run("batch", func(b *testing.B) { run(b, filter) })
}
