package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/query"
	"probpred/internal/serve"
)

// This file backs `ppbench -shard BENCH_shard.json`: the scatter-gather
// scaling benchmark. It answers two questions CI gates on. (1) Correctness:
// do 1/2/4-shard coordinators, under every routing policy, serve byte-
// identical results to an unsharded server? (2) Throughput: at equal offered
// load — an open-loop schedule overloading a single shard's worker set —
// how much more does a 4-shard coordinator achieve than a 1-shard one? Each
// shard is one worker set (MaxConcurrent=1, Workers=1), so the shard count
// is the parallelism knob; on a multi-core machine 4 shards should achieve
// ≥ 1.8× the 1-shard throughput (CI's gate, on 4-vCPU runners). The score
// cache is disabled for the throughput points so the measured work is real
// recomputation, not cache traffic.

// ShardCheck is one determinism run: a shard/replica/routing combination
// replayed against the unsharded baseline.
type ShardCheck struct {
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	Routing  string `json:"routing"`
	// OutputsIdentical reports byte-identical rendered responses (rows, row
	// order, cluster cost) against the unsharded server.
	OutputsIdentical bool `json:"outputs_identical"`
	// PlanMisses counts plan searches across all replicas — plan-affinity
	// routing needs fewer than round-robin because repeat predicates stick
	// to one warm replica per shard.
	PlanMisses uint64 `json:"plan_misses"`
	// ScatterSessions counts merged sessions served.
	ScatterSessions uint64 `json:"scatter_sessions"`
}

// ShardPoint is one open-loop throughput point of the shard sweep.
type ShardPoint struct {
	Shards      int     `json:"shards"`
	Replicas    int     `json:"replicas"`
	Routing     string  `json:"routing"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Errors      int     `json:"errors"`
	// Total is the dispatch→done latency distribution of timed arrivals.
	Total LatencyQuantiles `json:"total"`
	// OutputsIdentical reports the point's warm-phase responses matched the
	// unsharded baseline render per query.
	OutputsIdentical bool `json:"outputs_identical"`
}

// ShardDoc is the machine-readable report written to BENCH_shard.json.
type ShardDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	Queries     int    `json:"queries"`
	Blobs       int    `json:"blobs"`
	// BaseServiceMS is the warm sequential per-query service time of the
	// 1-shard coordinator — the unit the offered overload rate is scaled by.
	BaseServiceMS float64 `json:"base_service_ms"`

	// Checks are the determinism runs (shards × routing policies).
	Checks []ShardCheck `json:"checks"`
	// Points is the equal-offered-load throughput sweep over shard counts.
	Points []ShardPoint `json:"points"`

	// OutputsIdentical aggregates every check and point: true iff all
	// sharded configurations served byte-identical results.
	OutputsIdentical bool `json:"outputs_identical"`
	// Throughput4Over1 is achieved QPS at 4 shards over achieved QPS at 1
	// shard, same offered load. CI requires >= 1.8 (4-vCPU runners).
	Throughput4Over1 float64 `json:"throughput_4_over_1"`
	// Throughput2Over1 is the 2-shard ratio, for the scaling curve.
	Throughput2Over1 float64 `json:"throughput_2_over_1"`
	// AffinityPlanMisses / RoundRobinPlanMisses compare cache warmth across
	// routing policies at the same shard/replica shape: affinity routes
	// repeat predicates to one warm replica, so it must not search more.
	AffinityPlanMisses   uint64 `json:"affinity_plan_misses"`
	RoundRobinPlanMisses uint64 `json:"round_robin_plan_misses"`
}

// Write serializes the document as indented JSON.
func (d *ShardDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// shardOverload is the offered load of the throughput points, as a multiple
// of the 1-shard worker set's capacity. It caps the measurable speedup (a
// 4-shard coordinator cannot achieve more than what is offered), so it sits
// well above the 1.8× gate.
const shardOverload = 3.0

// RunShard builds the traffic harness and runs the determinism checks plus
// the equal-offered-load throughput sweep.
func RunShard(cfg Config) (*ShardDoc, *Report, error) {
	const accuracy = 0.95
	warm := len(TRAF20)
	timed := cfg.scale(400, 200)

	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, nil, err
	}
	queries := make([]latencyQuery, len(TRAF20))
	for i, q := range TRAF20 {
		pred, err := query.Parse(q.Pred)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: shard workload %s (%q): %w", q.ID, q.Pred, err)
		}
		queries[i] = latencyQuery{ID: q.ID, Pred: pred}
	}
	// Determinism checks replay every query twice, repeats adjacent —
	// repetition is what separates plan-affinity (repeats hit one warm
	// replica per shard) from round-robin (adjacent repeats alternate
	// replicas and re-plan). The throughput points replay a single round for
	// their output check.
	var detWorkload []serve.WorkloadQuery
	for _, q := range TRAF20 {
		for r := 1; r <= 2; r++ {
			detWorkload = append(detWorkload, serve.WorkloadQuery{
				ID:   fmt.Sprintf("%s.r%d", q.ID, r),
				Pred: q.Pred,
			})
		}
	}
	pointWorkload := serveWorkload(1)

	baseCfg := func() serve.Config {
		return serve.Config{
			Optimizer:         h.Opt,
			Accuracy:          accuracy,
			Domains:           data.TrafficDomains(),
			MaxConcurrent:     1,
			Exec:              engine.Config{Workers: 1},
			DisableScoreCache: true,
			Metrics:           cfg.Metrics,
			Obs:               cfg.Obs,
		}
	}

	// Unsharded baseline: the render every sharded configuration must match.
	bcfg := baseCfg()
	bcfg.Builder = trafficBuilder{h}
	baseSrv, err := serve.New(bcfg)
	if err != nil {
		return nil, nil, err
	}
	baseDetResps, err := baseSrv.Replay(detWorkload, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: shard baseline replay: %w", err)
	}
	basePointResps, err := baseSrv.Replay(pointWorkload, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: shard baseline replay: %w", err)
	}
	baselineDet := renderServeResponses(baseDetResps)
	baselinePoint := renderServeResponses(basePointResps)

	newCoord := func(shards, replicas int, routing serve.RoutingPolicy) (*serve.Coordinator, error) {
		b := baseCfg()
		b.Routing = routing
		return serve.NewSharded(serve.ShardedConfig{
			Base:     b,
			Shards:   shards,
			Replicas: replicas,
			Corpus:   h.TestBlobs,
			Builder:  trafficBuilder{h},
		})
	}

	doc := &ShardDoc{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Seed:             cfg.Seed,
		Quick:            cfg.Quick,
		Queries:          len(TRAF20),
		Blobs:            len(h.TestBlobs),
		OutputsIdentical: true,
	}

	// Determinism checks: every shard count × routing policy, two replicas
	// per shard so routing has real choices, replayed concurrently.
	policies := []serve.RoutingPolicy{serve.RouteRoundRobin, serve.RouteLeastLoaded, serve.RoutePlanAffinity}
	for _, shards := range []int{1, 2, 4} {
		for _, pol := range policies {
			coord, err := newCoord(shards, 2, pol)
			if err != nil {
				return nil, nil, err
			}
			resps, err := coord.Replay(detWorkload, 4)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: shard replay (%d shards, %s): %w", shards, pol, err)
			}
			st := coord.Stats()
			check := ShardCheck{
				Shards: shards, Replicas: 2, Routing: string(pol),
				OutputsIdentical: renderServeResponses(resps) == baselineDet,
				PlanMisses:       st.PlanMisses,
				ScatterSessions:  st.ScatterSessions,
			}
			doc.Checks = append(doc.Checks, check)
			doc.OutputsIdentical = doc.OutputsIdentical && check.OutputsIdentical
			if shards == 2 {
				switch pol {
				case serve.RoutePlanAffinity:
					doc.AffinityPlanMisses = st.PlanMisses
				case serve.RouteRoundRobin:
					doc.RoundRobinPlanMisses = st.PlanMisses
				}
			}
		}
	}

	// Calibrate the 1-shard worker set's warm sequential service time.
	cal, err := newCoord(1, 1, serve.RouteRoundRobin)
	if err != nil {
		return nil, nil, err
	}
	var calSum time.Duration
	for pass := 0; pass < 2; pass++ { // pass 0 warms the plan caches
		calSum = 0
		for _, q := range queries {
			resp, err := cal.Do(serve.Request{ID: q.ID, Pred: q.Pred})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: shard calibration %s: %w", q.ID, err)
			}
			calSum += resp.Service
		}
	}
	baseService := calSum / time.Duration(len(queries))
	if baseService <= 0 {
		baseService = time.Microsecond
	}
	doc.BaseServiceMS = float64(baseService) / float64(time.Millisecond)
	qps := shardOverload / baseService.Seconds()
	if qps > maxLatencyQPS {
		qps = maxLatencyQPS
	}

	// Equal offered load across shard counts: the same seeded schedule, a
	// fresh coordinator per point so caches start cold (warmup covers the
	// mix round-robin before measurement).
	achieved := map[int]float64{}
	for _, shards := range []int{1, 2, 4} {
		coord, err := newCoord(shards, 1, serve.RouteRoundRobin)
		if err != nil {
			return nil, nil, err
		}
		sched := latencySchedule(warm, timed, qps, false, len(queries), mathx.NewRNG(cfg.Seed^0x5a))
		outs, lagMax := runLatencyPoint(coord, queries, sched, warm)
		lp := LatencyPoint{OfferedQPS: qps, Warmup: warm, Timed: timed}
		summarizePoint(&lp, outs, lagMax, coord.Stats())
		// Re-check outputs on the live (now warm) point coordinator: replay
		// the workload once more and compare to the unsharded baseline.
		warmResps, err := coord.Replay(pointWorkload, 1)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: shard point replay (%d shards): %w", shards, err)
		}
		identical := renderServeResponses(warmResps) == baselinePoint
		p := ShardPoint{
			Shards: shards, Replicas: 1, Routing: string(serve.RouteRoundRobin),
			OfferedQPS: lp.OfferedQPS, AchievedQPS: lp.AchievedQPS, Errors: lp.Errors,
			Total: lp.Total, OutputsIdentical: identical,
		}
		doc.Points = append(doc.Points, p)
		doc.OutputsIdentical = doc.OutputsIdentical && identical
		achieved[shards] = lp.AchievedQPS
		if lp.Errors > 0 {
			return nil, nil, fmt.Errorf("bench: shard point %d shards: %d sessions failed", shards, lp.Errors)
		}
	}
	if achieved[1] > 0 {
		doc.Throughput4Over1 = achieved[4] / achieved[1]
		doc.Throughput2Over1 = achieved[2] / achieved[1]
	}

	rep := &Report{ID: "shard", Title: fmt.Sprintf(
		"Sharded scatter-gather: %d timed arrivals/point at %.0fx single-shard load, base service %.2f ms",
		timed, shardOverload, doc.BaseServiceMS)}
	tb := &table{header: []string{"shards", "replicas", "routing", "offered qps", "achieved", "total p50/p99 ms", "identical"}}
	for _, p := range doc.Points {
		tb.add(fmt.Sprintf("%d", p.Shards), fmt.Sprintf("%d", p.Replicas), p.Routing,
			f1(p.OfferedQPS), f1(p.AchievedQPS),
			fmt.Sprintf("%.2f/%.2f", p.Total.P50MS, p.Total.P99MS),
			fmt.Sprintf("%v", p.OutputsIdentical))
	}
	rep.Lines = tb.render()
	rep.Lines = append(rep.Lines, "",
		fmt.Sprintf("throughput vs 1 shard: 2 shards %.2fx, 4 shards %.2fx (GOMAXPROCS=%d)",
			doc.Throughput2Over1, doc.Throughput4Over1, doc.GOMAXPROCS),
		fmt.Sprintf("determinism: %d shard x routing checks, all identical: %v; plan misses affinity/round-robin: %d/%d",
			len(doc.Checks), doc.OutputsIdentical, doc.AffinityPlanMisses, doc.RoundRobinPlanMisses))
	rep.metric("throughput_4_over_1", doc.Throughput4Over1)
	rep.metric("throughput_2_over_1", doc.Throughput2Over1)
	rep.metric("outputs_identical", b2f(doc.OutputsIdentical))
	rep.metric("base_service_ms", doc.BaseServiceMS)
	return doc, rep, nil
}

// Shard is the registry wrapper: it runs the shard sweep and returns just
// the report (cmd/ppbench -shard also writes the JSON document).
func Shard(cfg Config) (*Report, error) {
	_, rep, err := RunShard(cfg)
	return rep, err
}
