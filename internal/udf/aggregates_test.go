package udf

import (
	"math"
	"testing"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/query"
)

// TestQ2StyleAggregation runs the §2 Q2 shape: average speed per from-
// intersection, computed after UDF materialization — with and without a PP
// on an implicit filter (frames with vehicles above a speed are relevant).
func TestQ2StyleAggregation(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 2000, Seed: 1})
	speedUDF, err := TrafficUDFFor("s", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	fromUDF, err := TrafficUDFFor("i", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := engine.Plan{Ops: []engine.Operator{
		&engine.Scan{Blobs: blobs},
		&engine.Process{P: VehDetector{}},
		&engine.Process{P: speedUDF},
		&engine.Process{P: fromUDF},
		&engine.GroupReduce{R: AvgReducer{KeyCol: "i", ValCol: "s"}},
	}}
	res, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(data.Intersections) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(data.Intersections))
	}
	// Cross-check one group against ground truth.
	want := map[string][]float64{}
	for _, b := range blobs {
		iv, _ := data.TrafficValue(b, "i")
		sv, _ := b.TruthVal("s")
		want[iv.Str] = append(want[iv.Str], sv)
	}
	for _, r := range res.Rows {
		key, _ := r.Get("i")
		avg, _ := r.Get("avg_s")
		sum := 0.0
		for _, s := range want[key.Str] {
			sum += s
		}
		truth := sum / float64(len(want[key.Str]))
		if math.Abs(avg.Num-truth) > 1e-9 {
			t.Fatalf("avg speed for %s = %v, want %v", key.Str, avg.Num, truth)
		}
	}
}

func TestCountReducer(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 1000, Seed: 4})
	typeUDF, err := TrafficUDFFor("t", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan := engine.Plan{Ops: []engine.Operator{
		&engine.Scan{Blobs: blobs},
		&engine.Process{P: typeUDF},
		&engine.GroupReduce{R: CountReducer{KeyCol: "t"}},
	}}
	res, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range res.Rows {
		c, err := r.Get("count")
		if err != nil {
			t.Fatal(err)
		}
		total += c.Num
	}
	if int(total) != len(blobs) {
		t.Fatalf("counts sum to %v, want %d", total, len(blobs))
	}
}

func TestAvgReducerNonNumeric(t *testing.T) {
	rows := []engine.Row{{Cols: map[string]query.Value{
		"k": query.Str("a"), "v": query.Str("oops"),
	}}}
	_, err := AvgReducer{KeyCol: "k", ValCol: "v"}.Reduce("a", rows)
	if err == nil {
		t.Fatal("expected error for non-numeric average")
	}
}

// TestQ4StyleSequence runs the §2 Q4 shape: vehicles seen at camera C1 and
// then at C2, joined by vehicle identity with a time-ordered combiner.
func TestQ4StyleSequence(t *testing.T) {
	mkRow := func(id string, ts float64) engine.Row {
		return engine.Row{Cols: map[string]query.Value{
			"veh":  query.Str(id),
			"time": query.Number(ts),
		}}
	}
	// Camera C1 observations (left) and C2 observations (right).
	c1 := []engine.Row{mkRow("a", 1), mkRow("b", 9), mkRow("c", 4)}
	c2 := []engine.Row{mkRow("a", 5), mkRow("b", 2), mkRow("d", 7)}
	comb := SequenceCombiner{TimeCol: "time"}
	var out []engine.Row
	for _, id := range []string{"a", "b", "c", "d"} {
		var l, r []engine.Row
		for _, row := range c1 {
			if v, _ := row.Get("veh"); v.Str == id {
				l = append(l, row)
			}
		}
		for _, row := range c2 {
			if v, _ := row.Get("veh"); v.Str == id {
				r = append(r, row)
			}
		}
		if len(l) == 0 || len(r) == 0 {
			continue
		}
		rows, err := comb.Combine(id, l, r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rows...)
	}
	// Only "a" was at C1 (t=1) before C2 (t=5); "b" went the other way.
	if len(out) != 1 {
		t.Fatalf("matches = %d, want 1", len(out))
	}
	veh, _ := out[0].Get("veh")
	if veh.Str != "a" {
		t.Fatalf("matched %q, want a", veh.Str)
	}
	first, _ := out[0].Get("firstSeen")
	then, _ := out[0].Get("thenSeen")
	if first.Num != 1 || then.Num != 5 {
		t.Fatalf("times = %v, %v", first.Num, then.Num)
	}
}

func TestSequenceCombinerViaEngine(t *testing.T) {
	mk := func(id string, ts float64) engine.Row {
		return engine.Row{Cols: map[string]query.Value{
			"veh": query.Str(id), "time": query.Number(ts),
		}}
	}
	right := []engine.Row{mk("x", 10), mk("y", 1)}
	// The engine's Combine operator needs a left input produced by a plan;
	// use a Project over scanned blobs to fabricate it.
	blobs := data.Traffic(data.TrafficConfig{Rows: 2, Seed: 6})
	plan := engine.Plan{Ops: []engine.Operator{
		&engine.Scan{Blobs: blobs},
		&engine.Project{Compute: []engine.ComputedCol{
			{Name: "veh", Fn: func(r engine.Row) (query.Value, error) {
				return query.Str([]string{"x", "y"}[r.Blob.ID%2]), nil
			}},
			{Name: "time", Fn: func(r engine.Row) (query.Value, error) {
				return query.Number(float64(2 + r.Blob.ID)), nil
			}},
		}},
		&engine.Combine{C: SequenceCombiner{TimeCol: "time"},
			Right: right, LeftKey: "veh", RightKey: "veh"},
	}}
	res, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// x: left t=2 < right t=10 → match; y: left t=3 > right t=1 → no.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestReducerMetadata(t *testing.T) {
	if (CountReducer{KeyCol: "k"}).Cost() != 0.5 {
		t.Fatal("default count cost")
	}
	if (AvgReducer{KeyCol: "k", ValCol: "v", CostMS: 2}).Cost() != 2 {
		t.Fatal("explicit avg cost")
	}
	if (SequenceCombiner{}).Cost() != 0.2 {
		t.Fatal("default combiner cost")
	}
}
