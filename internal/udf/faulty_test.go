package udf

import (
	"errors"
	"testing"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/fault"
	"probpred/internal/query"
)

func trafficBlobsForTest(n int, seed uint64) []engine.Row {
	stream := data.Traffic(data.TrafficConfig{Rows: n, Seed: seed})
	rows := make([]engine.Row, n)
	for i, b := range stream {
		rows[i] = engine.NewRow(b)
	}
	return rows
}

func TestFaultyPassthrough(t *testing.T) {
	p, err := TrafficUDFFor("t", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := Faulty(p, fault.NewInjector(1)) // no faults configured
	if f.Name() != p.Name() || f.Cost() != p.Cost() {
		t.Fatal("wrapper must pass name and cost through")
	}
	for _, r := range trafficBlobsForTest(50, 2) {
		want, err := p.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		got, elapsed, err := f.ApplyTimed(r)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed != p.Cost() {
			t.Fatalf("healthy elapsed = %v, want %v", elapsed, p.Cost())
		}
		gv, _ := got[0].Get("t")
		wv, _ := want[0].Get("t")
		if gv != wv {
			t.Fatalf("wrapper changed output: %v vs %v", gv, wv)
		}
	}
}

func TestFaultyInjectsTransientsAndRecovers(t *testing.T) {
	p, err := TrafficUDFFor("c", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(7)
	inj.SetDefault(fault.Spec{TransientRate: 0.3, MaxConsecutive: 3})
	f := Faulty(p, inj)
	rows := trafficBlobsForTest(400, 4)
	sawFault := false
	for _, r := range rows {
		// Emulate the engine's retry loop with a generous budget.
		var lastErr error
		ok := false
		for attempt := 0; attempt < 5; attempt++ {
			_, _, err := f.ApplyTimed(r)
			if err == nil {
				ok = true
				break
			}
			lastErr = err
			var te *fault.TransientError
			if !errors.As(err, &te) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFault = true
		}
		if !ok {
			t.Fatalf("blob %d never recovered: %v", r.Blob.ID, lastErr)
		}
	}
	if !sawFault {
		t.Fatal("30% rate injected nothing over 400 blobs")
	}
}

func TestFaultyStragglerInflatesElapsed(t *testing.T) {
	p, err := TrafficUDFFor("s", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(11)
	inj.SetDefault(fault.Spec{StragglerRate: 0.2, StragglerFactor: 12})
	f := Faulty(p, inj)
	slow := 0
	for _, r := range trafficBlobsForTest(300, 6) {
		_, elapsed, err := f.ApplyTimed(r)
		if err != nil {
			t.Fatal(err)
		}
		switch elapsed {
		case p.Cost():
		case p.Cost() * 12:
			slow++
		default:
			t.Fatalf("elapsed = %v, want cost or 12x cost", elapsed)
		}
	}
	if slow < 30 || slow > 90 {
		t.Fatalf("stragglers = %d/300, want ~60", slow)
	}
}

func TestFaultyResetReplaysSchedule(t *testing.T) {
	p, err := TrafficUDFFor("t", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(13)
	inj.SetDefault(fault.Spec{TransientRate: 0.5})
	f := Faulty(p, inj)
	rows := trafficBlobsForTest(100, 8)
	record := func() []bool {
		out := make([]bool, len(rows))
		for i, r := range rows {
			_, _, err := f.ApplyTimed(r)
			out[i] = err != nil
		}
		return out
	}
	first := record()
	f.Reset()
	second := record()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule diverged at blob %d after Reset", i)
		}
	}
}

// TestFaultyEndToEndByteIdentical is the wrapper-level version of the
// acceptance criterion: a full plan with 10% transient injection and retries
// produces exactly the rows of the fault-free run, while charging more
// virtual time.
func TestFaultyEndToEndByteIdentical(t *testing.T) {
	stream := data.Traffic(data.TrafficConfig{Rows: 1500, Seed: 21})
	pred := query.MustParse("t=SUV & s>50")
	mkPlan := func(inj *fault.Injector) (engine.Plan, error) {
		procs, err := TrafficPipeline(pred, 0, 21)
		if err != nil {
			return engine.Plan{}, err
		}
		if inj != nil {
			procs = FaultyPipeline(procs, inj)
		}
		ops := []engine.Operator{&engine.Scan{Blobs: stream}}
		for _, p := range procs {
			ops = append(ops, &engine.Process{P: p})
		}
		ops = append(ops, &engine.Select{Pred: pred})
		return engine.Plan{Ops: ops}, nil
	}
	clean, err := mkPlan(nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Run(clean, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(77)
	inj.SetDefault(fault.Spec{TransientRate: 0.10, StragglerRate: 0.02, StragglerFactor: 10, MaxConsecutive: 3})
	flaky, err := mkPlan(inj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(flaky, engine.Config{
		Retry: engine.RetryPolicy{MaxAttempts: 6, BackoffBaseMS: 20, RowTimeoutMS: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ref.Rows) {
		t.Fatalf("rows %d vs %d", len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if res.Rows[i].Blob.ID != ref.Rows[i].Blob.ID {
			t.Fatalf("row %d diverged", i)
		}
		for col, v := range ref.Rows[i].Cols {
			if got, err := res.Rows[i].Get(col); err != nil || got != v {
				t.Fatalf("row %d col %s: %v vs %v", i, col, got, v)
			}
		}
	}
	if res.ClusterTime <= ref.ClusterTime {
		t.Fatalf("retry work must be charged: %v vs %v", res.ClusterTime, ref.ClusterTime)
	}
}
