package udf

import (
	"testing"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/query"
)

func trafficRows(t *testing.T, n int) []engine.Row {
	t.Helper()
	blobs := data.Traffic(data.TrafficConfig{Rows: n, Seed: 1})
	rows := make([]engine.Row, n)
	for i, b := range blobs {
		rows[i] = engine.NewRow(b)
	}
	return rows
}

func TestTrafficAttributeExact(t *testing.T) {
	rows := trafficRows(t, 200)
	u, err := TrafficUDFFor("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		out, err := u.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("output rows = %d", len(out))
		}
		got, err := out[0].Get("t")
		if err != nil {
			t.Fatal(err)
		}
		want, err := data.TrafficValue(r.Blob, "t")
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("zero-error UDF mislabeled: %v vs %v", got, want)
		}
	}
}

func TestTrafficAttributeErrorRate(t *testing.T) {
	rows := trafficRows(t, 2000)
	u := &TrafficAttribute{Col: "c", UDFName: "ColorClassifier", CostMS: 1, ErrRate: 0.2, Seed: 7}
	wrong := 0
	for _, r := range rows {
		out, err := u.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out[0].Get("c")
		want, _ := data.TrafficValue(r.Blob, "c")
		if !got.Equal(want) {
			wrong++
		}
	}
	frac := float64(wrong) / float64(len(rows))
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("error rate = %v, want ~0.2", frac)
	}
}

func TestTrafficAttributeNumericPerturbInRange(t *testing.T) {
	rows := trafficRows(t, 500)
	u := &TrafficAttribute{Col: "s", UDFName: "SpeedEstimator", CostMS: 1, ErrRate: 1, Seed: 9}
	for _, r := range rows {
		out, err := u.Apply(r)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out[0].Get("s")
		if !got.IsNum || got.Num < 0 || got.Num > 80 {
			t.Fatalf("perturbed speed out of range: %v", got)
		}
	}
}

func TestTrafficUDFForUnknownColumn(t *testing.T) {
	if _, err := TrafficUDFFor("z", 0, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrafficPipeline(t *testing.T) {
	pred := query.MustParse("t=SUV & c=red & s>60")
	procs, err := TrafficPipeline(pred, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Detector + 3 attribute UDFs.
	if len(procs) != 4 {
		t.Fatalf("pipeline length = %d", len(procs))
	}
	if procs[0].Name() != "VehDetector" {
		t.Fatalf("first processor = %s", procs[0].Name())
	}
	want := float64(VehDetectorCost + TypeClassifierCost + ColorClassifierCost + SpeedEstimatorCost)
	if got := PipelineCost(procs); got != want {
		t.Fatalf("pipeline cost = %v, want %v", got, want)
	}
}

func TestTrafficPipelineEndToEnd(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 500, Seed: 2})
	pred := query.MustParse("t=SUV & c=red")
	procs, err := TrafficPipeline(pred, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	res, err := engine.Run(engine.Plan{Ops: ops}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth count.
	set, err := data.TrafficSet(blobs, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != set.Positives() {
		t.Fatalf("query returned %d rows, truth has %d", len(res.Rows), set.Positives())
	}
}

func TestCategoryClassifier(t *testing.T) {
	d := data.LSHTC(data.LSHTCConfig{Docs: 300, Seed: 3})
	c := &CategoryClassifier{Dataset: d, Cat: 2, CostMS: 10}
	match := 0
	for i, b := range d.Blobs {
		out, err := c.Apply(engine.NewRow(b))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := out[0].Get(ColName(2))
		if (v.Num == 1) != d.Members[2][i] {
			t.Fatalf("classifier disagrees with membership at %d", i)
		}
		if v.Num == 1 {
			match++
		}
	}
	if match == 0 {
		t.Fatal("no members found")
	}
}

func TestCategoryClassifierOutOfRange(t *testing.T) {
	d := data.LSHTC(data.LSHTCConfig{Docs: 10, Seed: 4})
	c := &CategoryClassifier{Dataset: d, Cat: 0, CostMS: 1}
	bad := engine.NewRow(d.Blobs[0])
	bad.Blob.ID = 999
	if _, err := c.Apply(bad); err == nil {
		t.Fatal("expected error for out-of-range blob")
	}
}

func TestFrameObjectDetector(t *testing.T) {
	v := data.Coral(data.CoralConfig{Frames: 200, Seed: 5})
	det := FrameObjectDetector{}
	if det.Cost() != 500 {
		t.Fatalf("default cost = %v", det.Cost())
	}
	for i, f := range v.Frames[:100] {
		out, err := det.Apply(engine.NewRow(f))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out[0].Get("object")
		if (got.Num == 1) != v.HasObject[i] {
			t.Fatalf("detector wrong at frame %d", i)
		}
	}
}
