package udf

import (
	"sync"

	"probpred/internal/engine"
	"probpred/internal/fault"
)

// FaultyProcessor wraps any engine.Processor with injector-driven transient
// failures and stragglers, without touching the wrapped UDF's logic. It
// implements engine.TimedProcessor so that straggling attempts report their
// inflated virtual duration, which the engine's per-row timeout budget can
// then convert into a retry.
//
// Attempt numbers are tracked per blob: each Apply of the same blob (i.e.
// each engine retry) advances the attempt, and the injector's decisions are
// a pure function of (operator, blob, attempt) — so outcomes are identical
// whether the engine runs sequentially or chunked across workers. A wrapper
// instance accumulates attempt state across one engine.Run; call Reset (or
// build fresh wrappers) before reusing it for another run.
type FaultyProcessor struct {
	P   engine.Processor
	Inj *fault.Injector

	mu       sync.Mutex
	attempts map[int]int
}

// Faulty wraps p with the injector's fault model.
func Faulty(p engine.Processor, inj *fault.Injector) *FaultyProcessor {
	return &FaultyProcessor{P: p, Inj: inj, attempts: map[int]int{}}
}

// Name implements engine.Processor, passing the wrapped name through so
// fault specs and cost accounting address the real UDF.
func (f *FaultyProcessor) Name() string { return f.P.Name() }

// Cost implements engine.Processor: the nominal (healthy-attempt) cost.
func (f *FaultyProcessor) Cost() float64 { return f.P.Cost() }

// Apply implements engine.Processor.
func (f *FaultyProcessor) Apply(r engine.Row) ([]engine.Row, error) {
	rows, _, err := f.ApplyTimed(r)
	return rows, err
}

// ApplyTimed implements engine.TimedProcessor: it consults the injector for
// this blob's next attempt, failing transiently or inflating the reported
// virtual duration as decided, and otherwise delegates to the wrapped UDF.
func (f *FaultyProcessor) ApplyTimed(r engine.Row) ([]engine.Row, float64, error) {
	attempt := f.nextAttempt(r.Blob.ID)
	out := f.Inj.Decide(f.Name(), r.Blob.ID, attempt)
	elapsed := f.P.Cost() * out.SlowFactor
	if out.Fail {
		return nil, elapsed, &fault.TransientError{Op: f.Name(), BlobID: r.Blob.ID, Attempt: attempt}
	}
	rows, err := f.P.Apply(r)
	return rows, elapsed, err
}

// Reset clears the per-blob attempt state so the wrapper replays the same
// fault schedule on a fresh engine.Run.
func (f *FaultyProcessor) Reset() {
	f.mu.Lock()
	f.attempts = map[int]int{}
	f.mu.Unlock()
}

// Attempts reports how many attempts the blob has consumed so far.
func (f *FaultyProcessor) Attempts(blobID int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[blobID]
}

func (f *FaultyProcessor) nextAttempt(blobID int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts == nil {
		f.attempts = map[int]int{}
	}
	f.attempts[blobID]++
	return f.attempts[blobID]
}

// FaultyPipeline wraps every processor of a chain with the same injector —
// the one-call way to make a whole simulated UDF pipeline flaky.
func FaultyPipeline(procs []engine.Processor, inj *fault.Injector) []engine.Processor {
	out := make([]engine.Processor, len(procs))
	for i, p := range procs {
		out[i] = Faulty(p, inj)
	}
	return out
}
