// Package udf provides the simulated expensive machine-learning UDFs that
// stand in for the paper's detectors, feature extractors and classifiers
// (§2, §7). Each UDF implements one of the engine's templates (§4) and
// declares a virtual per-row cost; its output is decoded from the
// generator's ground truth with a configurable error rate, which mirrors
// the paper's observation that "the UDFs can often be imperfect" (§8.1).
//
// Only UDFs read ground truth. PPs never do — they see raw blob features.
package udf

import (
	"fmt"
	"sync"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

// TrafficAttribute is a Processor that materializes one predicate column of
// the traffic workload (vehicle type, color, speed, route endpoints) from a
// vehicle-detection row, at a declared virtual cost.
type TrafficAttribute struct {
	// Col is the output column ("t", "c", "s", "i", "o").
	Col string
	// UDFName is the display name (e.g. "TypeClassifier").
	UDFName string
	// CostMS is the virtual per-row cost.
	CostMS float64
	// ErrRate is the probability the UDF mislabels a row (categorical:
	// uniform wrong value; numeric: Gaussian perturbation).
	ErrRate float64
	// Seed drives the error process.
	Seed uint64

	mu  sync.Mutex
	rng *mathx.RNG
}

// Name implements engine.Processor.
func (u *TrafficAttribute) Name() string { return u.UDFName }

// Cost implements engine.Processor.
func (u *TrafficAttribute) Cost() float64 { return u.CostMS }

// Apply implements engine.Processor.
func (u *TrafficAttribute) Apply(r engine.Row) ([]engine.Row, error) {
	v, err := data.TrafficValue(r.Blob, u.Col)
	if err != nil {
		return nil, fmt.Errorf("udf: %s: %w", u.UDFName, err)
	}
	if u.ErrRate > 0 {
		// The error process is stateful; the lock keeps Apply safe under
		// the engine's parallel execution (engine.Config.Workers > 1).
		u.mu.Lock()
		if u.rng == nil {
			u.rng = mathx.NewRNG(u.Seed ^ 0xe44)
		}
		if u.rng.Bernoulli(u.ErrRate) {
			v = u.perturb(v)
		}
		u.mu.Unlock()
	}
	return []engine.Row{r.With(u.Col, v)}, nil
}

// perturb returns a wrong-but-plausible value.
func (u *TrafficAttribute) perturb(v query.Value) query.Value {
	if v.IsNum {
		return query.Number(mathx.Clamp(v.Num+u.rng.NormFloat64()*5, 0, 80))
	}
	var domain []string
	switch u.Col {
	case "t":
		domain = data.VehicleTypes
	case "c":
		domain = data.VehicleColors
	default:
		domain = data.Intersections
	}
	for {
		cand := domain[u.rng.Intn(len(domain))]
		if cand != v.Str {
			return query.Str(cand)
		}
	}
}

// Default virtual costs of the traffic UDF pipeline, set so that a typical
// query's downstream UDF cost per row lands in the 23–85 ms range of
// Table 9.
const (
	VehDetectorCost     = 15
	TypeClassifierCost  = 25
	ColorClassifierCost = 22
	SpeedEstimatorCost  = 18
	RouteTrackerCost    = 30
)

// VehDetector is the ingestion Processor of the running example (§1): it
// represents vehicle-bounding-box extraction. On the synthetic stream each
// blob already is one detection, so it is a costly pass-through.
type VehDetector struct{}

// Name implements engine.Processor.
func (VehDetector) Name() string { return "VehDetector" }

// Cost implements engine.Processor.
func (VehDetector) Cost() float64 { return VehDetectorCost }

// Apply implements engine.Processor.
func (VehDetector) Apply(r engine.Row) ([]engine.Row, error) { return []engine.Row{r}, nil }

// TrafficUDFFor returns the Processor that materializes col, with the
// repository's default cost for that attribute and the given error rate.
func TrafficUDFFor(col string, errRate float64, seed uint64) (engine.Processor, error) {
	spec := map[string]struct {
		name string
		cost float64
	}{
		"t": {"TypeClassifier", TypeClassifierCost},
		"c": {"ColorClassifier", ColorClassifierCost},
		"s": {"SpeedEstimator", SpeedEstimatorCost},
		"i": {"RouteTrackerFrom", RouteTrackerCost},
		"o": {"RouteTrackerTo", RouteTrackerCost},
	}
	sp, ok := spec[col]
	if !ok {
		return nil, fmt.Errorf("udf: no traffic UDF for column %q", col)
	}
	return &TrafficAttribute{Col: col, UDFName: sp.name, CostMS: sp.cost,
		ErrRate: errRate, Seed: seed}, nil
}

// TrafficPipeline builds the UDF chain a predicate needs: the detector plus
// one attribute UDF per referenced column, in catalog order. The summed
// Cost of the returned processors is the u that PPs can short-circuit.
func TrafficPipeline(pred query.Pred, errRate float64, seed uint64) ([]engine.Processor, error) {
	procs := []engine.Processor{VehDetector{}}
	cols := query.Columns(pred)
	for _, col := range cols {
		p, err := TrafficUDFFor(col, errRate, seed+uint64(len(procs)))
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// PipelineCost sums the virtual per-row costs of a processor chain.
func PipelineCost(procs []engine.Processor) float64 {
	total := 0.0
	for _, p := range procs {
		total += p.Cost()
	}
	return total
}

// CategoryClassifier is a Processor for the categorical datasets (§7 Cases
// 1-3): it emits a binary column "catK" that is 1 iff the blob carries
// category K, reading membership from the dataset with an error rate.
type CategoryClassifier struct {
	Dataset *data.Categorical
	// Cat is the category index.
	Cat int
	// CostMS is the virtual per-row cost of the feature extractor +
	// classifier pair (𝒞(ℱ(x)) in §1).
	CostMS float64
	// ErrRate is the probability of flipping the output bit.
	ErrRate float64
	// Seed drives the error process.
	Seed uint64

	rng *mathx.RNG
}

// ColName returns the output column name for category k.
func ColName(k int) string { return fmt.Sprintf("cat%d", k) }

// Name implements engine.Processor.
func (c *CategoryClassifier) Name() string {
	return fmt.Sprintf("%s.Classifier%d", c.Dataset.Name, c.Cat)
}

// Cost implements engine.Processor.
func (c *CategoryClassifier) Cost() float64 { return c.CostMS }

// Apply implements engine.Processor.
func (c *CategoryClassifier) Apply(r engine.Row) ([]engine.Row, error) {
	id := r.Blob.ID
	if id < 0 || id >= len(c.Dataset.Blobs) {
		return nil, fmt.Errorf("udf: blob %d outside dataset %s", id, c.Dataset.Name)
	}
	member := c.Dataset.Members[c.Cat][id]
	if c.ErrRate > 0 {
		if c.rng == nil {
			c.rng = mathx.NewRNG(c.Seed ^ 0xcc)
		}
		if c.rng.Bernoulli(c.ErrRate) {
			member = !member
		}
	}
	out := 0.0
	if member {
		out = 1
	}
	return []engine.Row{r.With(ColName(c.Cat), query.Number(out))}, nil
}

// FrameObjectDetector is the reference DNN object detector of Appendix B:
// it reads the coral stream's ground truth at a very high virtual cost
// (NoScope's reference CNN runs at ~1 frame per 30-60 ms on a GPU; scaled
// here relative to the other costs).
type FrameObjectDetector struct {
	// CostMS is the virtual per-frame cost. Zero selects 500.
	CostMS float64
}

// Name implements engine.Processor.
func (FrameObjectDetector) Name() string { return "RefDNN" }

// Cost implements engine.Processor.
func (d FrameObjectDetector) Cost() float64 {
	if d.CostMS == 0 {
		return 500
	}
	return d.CostMS
}

// Apply implements engine.Processor.
func (d FrameObjectDetector) Apply(r engine.Row) ([]engine.Row, error) {
	v, ok := r.Blob.TruthVal("object")
	if !ok {
		return nil, fmt.Errorf("udf: frame %d has no object truth", r.Blob.ID)
	}
	return []engine.Row{r.With("object", query.Number(v))}, nil
}
