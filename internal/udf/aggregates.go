package udf

import (
	"fmt"

	"probpred/internal/engine"
	"probpred/internal/query"
)

// Aggregation and tracking UDFs for the query shapes of §2 beyond plain
// selection: Q2 ("average car volume on each lane" — grouping and
// aggregation) and Q4 ("cars seen in camera C1 and then in C2" — a custom
// join over two filtered streams).

// CountReducer is a Reducer that groups rows by a key column and emits one
// row per group with the group key and its row count.
type CountReducer struct {
	// KeyCol is the grouping column.
	KeyCol string
	// OutCol names the count column. Empty selects "count".
	OutCol string
	// CostMS is the virtual per-input-row cost. Zero selects 0.5.
	CostMS float64
}

// Name implements engine.Reducer.
func (c CountReducer) Name() string { return "Count[" + c.KeyCol + "]" }

// Cost implements engine.Reducer.
func (c CountReducer) Cost() float64 {
	if c.CostMS == 0 {
		return 0.5
	}
	return c.CostMS
}

// Key implements engine.Reducer.
func (c CountReducer) Key(r engine.Row) (string, error) {
	v, err := r.Get(c.KeyCol)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// Reduce implements engine.Reducer.
func (c CountReducer) Reduce(key string, rows []engine.Row) ([]engine.Row, error) {
	out := c.OutCol
	if out == "" {
		out = "count"
	}
	return []engine.Row{{Cols: map[string]query.Value{
		c.KeyCol: query.Str(key),
		out:      query.Number(float64(len(rows))),
	}}}, nil
}

// AvgReducer groups rows by KeyCol and averages the numeric ValCol.
type AvgReducer struct {
	KeyCol, ValCol string
	// OutCol names the average column. Empty selects "avg_"+ValCol.
	OutCol string
	// CostMS is the virtual per-input-row cost. Zero selects 0.5.
	CostMS float64
}

// Name implements engine.Reducer.
func (a AvgReducer) Name() string { return fmt.Sprintf("Avg[%s by %s]", a.ValCol, a.KeyCol) }

// Cost implements engine.Reducer.
func (a AvgReducer) Cost() float64 {
	if a.CostMS == 0 {
		return 0.5
	}
	return a.CostMS
}

// Key implements engine.Reducer.
func (a AvgReducer) Key(r engine.Row) (string, error) {
	v, err := r.Get(a.KeyCol)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// Reduce implements engine.Reducer.
func (a AvgReducer) Reduce(key string, rows []engine.Row) ([]engine.Row, error) {
	sum := 0.0
	for _, r := range rows {
		v, err := r.Get(a.ValCol)
		if err != nil {
			return nil, err
		}
		if !v.IsNum {
			return nil, fmt.Errorf("udf: Avg over non-numeric column %q", a.ValCol)
		}
		sum += v.Num
	}
	out := a.OutCol
	if out == "" {
		out = "avg_" + a.ValCol
	}
	return []engine.Row{{Cols: map[string]query.Value{
		a.KeyCol: query.Str(key),
		out:      query.Number(sum / float64(len(rows))),
	}}}, nil
}

// SequenceCombiner is a Combiner implementing the Q4 pattern: for rows keyed
// by an entity (e.g. a vehicle identity), emit one row per entity that
// appears on the left side (camera C1) strictly before it appears on the
// right side (camera C2), comparing a numeric time column.
type SequenceCombiner struct {
	// TimeCol is the numeric ordering column present on both sides.
	TimeCol string
	// CostMS is the virtual cost per input row pair considered. Zero
	// selects 0.2.
	CostMS float64
}

// Name implements engine.Combiner.
func (s SequenceCombiner) Name() string { return "SeenThen[" + s.TimeCol + "]" }

// Cost implements engine.Combiner.
func (s SequenceCombiner) Cost() float64 {
	if s.CostMS == 0 {
		return 0.2
	}
	return s.CostMS
}

// Combine implements engine.Combiner: it emits the left row of the earliest
// left-then-right pair for the entity, annotated with both times.
func (s SequenceCombiner) Combine(key string, left, right []engine.Row) ([]engine.Row, error) {
	minLeft, err := minTime(left, s.TimeCol)
	if err != nil {
		return nil, err
	}
	maxRight, err := maxTime(right, s.TimeCol)
	if err != nil {
		return nil, err
	}
	if minLeft >= maxRight {
		return nil, nil // never seen left strictly before right
	}
	out := left[0].With("firstSeen", query.Number(minLeft))
	out = out.With("thenSeen", query.Number(maxRight))
	return []engine.Row{out}, nil
}

func minTime(rows []engine.Row, col string) (float64, error) {
	best := 0.0
	for i, r := range rows {
		v, err := r.Get(col)
		if err != nil {
			return 0, err
		}
		if !v.IsNum {
			return 0, fmt.Errorf("udf: sequence over non-numeric column %q", col)
		}
		if i == 0 || v.Num < best {
			best = v.Num
		}
	}
	return best, nil
}

func maxTime(rows []engine.Row, col string) (float64, error) {
	best := 0.0
	for i, r := range rows {
		v, err := r.Get(col)
		if err != nil {
			return 0, err
		}
		if !v.IsNum {
			return 0, fmt.Errorf("udf: sequence over non-numeric column %q", col)
		}
		if i == 0 || v.Num > best {
			best = v.Num
		}
	}
	return best, nil
}
