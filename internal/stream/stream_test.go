package stream

import (
	"bytes"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/metrics"
	"probpred/internal/online"
	"probpred/internal/pplog"
	"probpred/internal/query"
	"probpred/internal/serve"
)

func TestSegmentedCorpusAppend(t *testing.T) {
	c := NewSegmentedCorpus()
	if v := c.Version(); v != 0 {
		t.Fatalf("fresh corpus version = %d, want 0", v)
	}
	all := miniBlobs(30, 1)
	s1 := c.Append(all[:10])
	s2 := c.Append(all[10:12])
	s3 := c.Append(nil) // heartbeat: empty but still a version
	s4 := c.Append(all[12:])
	want := []Segment{
		{Index: 0, Version: 1, Start: 0, End: 10},
		{Index: 1, Version: 2, Start: 10, End: 12},
		{Index: 2, Version: 3, Start: 12, End: 12},
		{Index: 3, Version: 4, Start: 12, End: 30},
	}
	for i, got := range []Segment{s1, s2, s3, s4} {
		if got != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, got, want[i])
		}
	}
	if v := c.Version(); v != 4 {
		t.Errorf("version = %d, want 4", v)
	}
	if n := c.Len(); n != 30 {
		t.Errorf("len = %d, want 30", n)
	}
	segs := c.Segments()
	if len(segs) != 4 || segs[1] != want[1] {
		t.Errorf("Segments() = %+v", segs)
	}
	if got := c.Blobs(s2); len(got) != 2 || got[0].ID != all[10].ID || got[1].ID != all[11].ID {
		t.Errorf("Blobs(s2) covers wrong range")
	}
	if got := c.Blobs(s3); len(got) != 0 {
		t.Errorf("Blobs(heartbeat) = %d blobs, want 0", len(got))
	}
}

func TestSnapshotStableUnderAppend(t *testing.T) {
	c := NewSegmentedCorpus()
	all := miniBlobs(20, 2)
	c.Append(all[:5])
	snap, v := c.Snapshot()
	if v != 1 || len(snap) != 5 {
		t.Fatalf("snapshot = %d blobs at v%d, want 5 at v1", len(snap), v)
	}
	c.Append(all[5:])
	if len(snap) != 5 {
		t.Fatalf("snapshot grew to %d blobs after a later append", len(snap))
	}
	for i := range snap {
		if snap[i].ID != all[i].ID {
			t.Fatalf("snapshot blob %d mutated after append", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	st := newMiniStack(t, 1, nil, nil)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no server", Config{Corpus: st.corpus}, "Server is required"},
		{"no corpus", Config{Server: st.srv}, "Corpus is required"},
		{"online without lookup", Config{Server: st.srv, Corpus: st.corpus, Online: &online.System{}}, "Lookup is required"},
		{"negative sample", Config{Server: st.srv, Corpus: st.corpus, TrainSample: -1}, "negative"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	st := newMiniStack(t, 1, nil, nil)
	if err := st.ing.Register(Query{Pred: "t=SUV"}); err == nil {
		t.Error("missing ID accepted")
	}
	if err := st.ing.Register(Query{ID: "q", Pred: "t=SUV", Accuracy: 1.5}); err == nil {
		t.Error("accuracy 1.5 accepted")
	}
	if err := st.ing.Register(Query{ID: "q", Pred: "t ~~ SUV"}); err == nil {
		t.Error("unparsable predicate accepted")
	}
	if err := st.ing.Register(Query{ID: "q", Pred: "t=SUV"}); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if err := st.ing.Register(Query{ID: "q", Pred: "c=red"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := st.ing.BatchQuery("nope"); err == nil {
		t.Error("BatchQuery on unknown ID succeeded")
	}
}

func TestIngestDeltas(t *testing.T) {
	st := newMiniStack(t, 1, nil, nil)
	st.register(t, miniStandingQueries...)
	all := miniBlobs(300, 3)
	var deltas [][]Delta
	for _, seg := range splitSegments(all, []int{120, 200}) {
		ds, err := st.ing.Ingest(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != len(miniStandingQueries) {
			t.Fatalf("segment emitted %d deltas, want %d", len(ds), len(miniStandingQueries))
		}
		for i, d := range ds {
			if d.Query != miniStandingQueries[i].ID {
				t.Errorf("delta %d is %q, want registration order %q", i, d.Query, miniStandingQueries[i].ID)
			}
		}
		deltas = append(deltas, ds)
	}

	// σ makes every emitted row a true match; exact-PP queries must also be
	// complete per segment, and all rows arrive in ascending blob-ID order.
	for _, segDeltas := range deltas {
		for _, d := range segDeltas {
			segBlobs := st.corpus.Blobs(d.Segment)
			truth := map[int]bool{}
			p := mustPred(t, d.Query)
			for _, b := range segBlobs {
				if ok, _ := p.Eval(miniLookup(b)); ok {
					truth[b.ID] = true
				}
			}
			last := -1
			for _, row := range d.Resp.Result.Rows {
				if !truth[row.Blob.ID] {
					t.Errorf("%s seg%d emitted non-matching blob %d", d.Query, d.Segment.Index, row.Blob.ID)
				}
				if row.Blob.ID <= last {
					t.Errorf("%s seg%d rows out of blob-ID order (%d after %d)", d.Query, d.Segment.Index, row.Blob.ID, last)
				}
				last = row.Blob.ID
			}
			if (d.Query == "SQ1" || d.Query == "SQ2" || d.Query == "SQ5") && len(d.Resp.Result.Rows) != len(truth) {
				t.Errorf("%s seg%d retained %d/%d rows under exact PPs", d.Query, d.Segment.Index, len(d.Resp.Result.Rows), len(truth))
			}
		}
	}

	segs, emitted := st.ing.Stats()
	if segs != 3 || emitted != uint64(3*len(miniStandingQueries)) {
		t.Errorf("Stats() = %d segments, %d deltas; want 3, %d", segs, emitted, 3*len(miniStandingQueries))
	}
}

func mustPred(t *testing.T, id string) query.Pred {
	t.Helper()
	for _, q := range miniStandingQueries {
		if q.ID == id {
			return query.MustParse(q.Pred)
		}
	}
	t.Fatalf("no standing query %q", id)
	return nil
}

func TestIngestMetrics(t *testing.T) {
	reg := metrics.New()
	st := newMiniStack(t, 1, nil, func(c *Config) { c.Metrics = reg })
	st.register(t, Query{ID: "SQ1", Pred: "t=SUV"})
	all := miniBlobs(100, 4)
	for _, seg := range splitSegments(all, []int{40}) {
		if _, err := st.ing.Ingest(seg); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("stream_segments_total", "").Value(); v != 2 {
		t.Errorf("stream_segments_total = %v, want 2", v)
	}
	if v := reg.Counter("stream_blobs_total", "").Value(); v != 100 {
		t.Errorf("stream_blobs_total = %v, want 100", v)
	}
	if v := reg.Gauge("stream_corpus_version", "").Value(); v != 2 {
		t.Errorf("stream_corpus_version = %v, want 2", v)
	}
	if n := reg.Histogram("stream_lag_ns", "").Count(); n != 2 {
		t.Errorf("stream_lag_ns count = %d, want 2", n)
	}
	if v := reg.Counter("stream_delta_rows_total", "", metrics.L("query", "SQ1")).Value(); v <= 0 {
		t.Errorf("stream_delta_rows_total{query=SQ1} = %v, want > 0", v)
	}
}

func TestSegmentTagsQueryLog(t *testing.T) {
	var logBuf bytes.Buffer
	qlog := pplog.NewWriter(&logBuf, 8, nil)
	st := newMiniStack(t, 1, func(c *serve.Config) { c.QueryLog = qlog }, nil)
	st.register(t, Query{ID: "SQ1", Pred: "t=SUV"})
	if _, err := st.ing.Ingest(miniBlobs(50, 5)); err != nil {
		t.Fatal(err)
	}
	if resp, err := st.ing.BatchQuery("SQ1"); err != nil || resp == nil {
		t.Fatal(err)
	}
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := pplog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("query log has %d records, want 2", len(recs))
	}
	seg := recs[0].Seg
	if seg == nil || seg.Index != 0 || seg.Version != 1 {
		t.Fatalf("segment record tag = %+v, want index 0 version 1", seg)
	}
	if recs[1].Seg != nil {
		t.Fatalf("batch record should carry no segment tag, got %+v", recs[1].Seg)
	}
}

func TestIngestCopiesCallerSlice(t *testing.T) {
	st := newMiniStack(t, 1, nil, nil)
	st.register(t, Query{ID: "SQ1", Pred: "t=SUV"})
	blobs := miniBlobs(10, 6)
	if _, err := st.ing.Ingest(blobs); err != nil {
		t.Fatal(err)
	}
	stored, _ := st.corpus.Snapshot()
	blobs[0] = blob.Blob{} // caller reuses its slice
	if stored[0].ID != 0 || stored[0].Dense == nil {
		t.Fatal("corpus aliases the caller's slice")
	}
}
