package stream

import (
	"fmt"
	"sync"
	"time"

	"probpred/internal/blob"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/online"
	"probpred/internal/pplog"
	"probpred/internal/query"
	"probpred/internal/serve"
)

// Query declares one standing query: a predicate evaluated over every
// segment as it lands.
type Query struct {
	// ID labels the query in deltas, logs and metrics.
	ID string
	// Pred is the predicate text.
	Pred string
	// Accuracy is the query-wide accuracy target in (0, 1]. Zero selects 1
	// (no false negatives). It is both the serve-side planning target and
	// the watchdog's audit target.
	Accuracy float64
}

// Config configures an Ingestor.
type Config struct {
	// Server serves each segment's standing-query sessions. Required. Its
	// Config.Corpus must be set (segments are served via Request.Blobs) and
	// its optimizer must plan over Online's corpus when Online is set — that
	// is what routes per-segment retraining into the plans.
	Server *serve.Server
	// Corpus is the segmented blob corpus segments append to. Required.
	Corpus *SegmentedCorpus
	// Online, when set, closes the training loop per segment: realized
	// accuracy is audited against ground truth and reported to the watchdog,
	// and a sample of the segment's blobs is labeled and observed for
	// incremental (optionally warm-started) PP training. Nil freezes the PP
	// state — the configuration under which live deltas are byte-identical
	// to batch results.
	Online *online.System
	// Lookup resolves a blob's ground-truth attributes, used to label
	// training samples and to audit realized accuracy. Required when Online
	// is set.
	Lookup func(blob.Blob) query.Lookup
	// TrainSample bounds how many blobs per segment are labeled for
	// training. Zero observes the whole segment.
	TrainSample int
	// Seed drives the per-segment training-sample choice.
	Seed uint64
	// Metrics receives stream telemetry: segment and blob counters, the
	// ingest lag histogram and per-query delta-row counters. Nil disables.
	Metrics *metrics.Registry
}

// Delta is one standing query's incremental result over one segment. Rows
// arrive in blob-ID order (the engine preserves scan order regardless of
// Workers), so concatenating a query's deltas across segments reproduces the
// batch result over the same corpus and PP state.
type Delta struct {
	// Query is the standing query's ID.
	Query string
	// Segment is the segment the delta covers.
	Segment Segment
	// Resp is the serve response: rows, decision, costs, trace.
	Resp *serve.Response
	// Audited reports whether ground truth was consulted (Config.Lookup set
	// and the segment contained at least one true-positive blob).
	Audited bool
	// Expected is the ground-truth match count in the segment; Observed the
	// fraction of it the served result retained. Meaningful when Audited.
	Expected int
	Observed float64
}

type standing struct {
	id       string
	pred     query.Pred
	accuracy float64
}

// Ingestor runs standing queries over a segmented corpus. Ingest calls are
// serialized (segment order is the stream's order); Register and BatchQuery
// may run concurrently with them.
type Ingestor struct {
	cfg Config

	mu      sync.RWMutex
	queries []standing

	// ingestMu serializes Ingest: one segment fully lands — deltas emitted,
	// watchdog fed, training observed — before the next begins.
	ingestMu sync.Mutex

	// Segments counts segments ingested; Deltas counts deltas emitted.
	segments, deltas uint64
}

// New validates the config and returns an Ingestor with no standing queries.
func New(cfg Config) (*Ingestor, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("stream: Config.Server is required")
	}
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("stream: Config.Corpus is required")
	}
	if cfg.Online != nil && cfg.Lookup == nil {
		return nil, fmt.Errorf("stream: Config.Lookup is required when Online is set (training labels and accuracy audits read ground truth)")
	}
	if cfg.TrainSample < 0 {
		return nil, fmt.Errorf("stream: TrainSample %d is negative", cfg.TrainSample)
	}
	return &Ingestor{cfg: cfg}, nil
}

// Register adds a standing query. Registration order is delta emission order
// within each segment.
func (in *Ingestor) Register(q Query) error {
	if q.ID == "" {
		return fmt.Errorf("stream: standing query needs an ID")
	}
	if q.Accuracy < 0 || q.Accuracy > 1 {
		return fmt.Errorf("stream: standing query %q accuracy %v outside [0,1] (zero selects 1)", q.ID, q.Accuracy)
	}
	if q.Accuracy == 0 {
		q.Accuracy = 1
	}
	pred, err := query.Parse(q.Pred)
	if err != nil {
		return fmt.Errorf("stream: standing query %q: %w", q.ID, err)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, s := range in.queries {
		if s.id == q.ID {
			return fmt.Errorf("stream: standing query %q already registered", q.ID)
		}
	}
	in.queries = append(in.queries, standing{id: q.ID, pred: pred, accuracy: q.Accuracy})
	return nil
}

// Ingest lands one segment and runs every standing query over exactly its
// blobs, returning one delta per query in registration order. With an online
// system attached it then audits each delta's realized accuracy against
// ground truth (watchdog input) and observes a training sample — both under
// the server's corpus lock, so training never races an in-flight plan
// search. A failed query fails the ingest; the segment is still appended
// (the stream's data is never lost to a planning error).
func (in *Ingestor) Ingest(blobs []blob.Blob) ([]Delta, error) {
	in.ingestMu.Lock()
	defer in.ingestMu.Unlock()

	in.mu.RLock()
	queries := append([]standing(nil), in.queries...)
	in.mu.RUnlock()

	seg := in.cfg.Corpus.Append(blobs)
	segBlobs := in.cfg.Corpus.Blobs(seg)
	start := time.Now()

	deltas := make([]Delta, 0, len(queries))
	for _, q := range queries {
		resp, err := in.cfg.Server.Do(serve.Request{
			ID:       fmt.Sprintf("%s#seg%d", q.id, seg.Index),
			Pred:     q.pred,
			Accuracy: q.accuracy,
			Blobs:    segBlobs,
			Segment:  &pplog.SegInfo{Index: seg.Index, Version: seg.Version},
		})
		if err != nil {
			return deltas, fmt.Errorf("stream: segment %d query %q: %w", seg.Index, q.id, err)
		}
		d := Delta{Query: q.id, Segment: seg, Resp: resp}
		if in.cfg.Lookup != nil {
			d.Audited, d.Expected, d.Observed = in.audit(q, segBlobs, resp)
		}
		deltas = append(deltas, d)
		in.deltas++
		if reg := in.cfg.Metrics; reg != nil {
			reg.Counter("stream_delta_rows_total", "Standing-query delta rows emitted per query.",
				metrics.L("query", q.id)).Add(float64(len(resp.Result.Rows)))
		}
	}

	if in.cfg.Online != nil {
		in.train(seg, segBlobs, queries, deltas)
	}

	in.segments++
	if reg := in.cfg.Metrics; reg != nil {
		reg.Counter("stream_segments_total", "Segments ingested.").Inc()
		reg.Counter("stream_blobs_total", "Blobs ingested across all segments.").Add(float64(len(blobs)))
		reg.Gauge("stream_corpus_version", "Segmented corpus version (segments appended).").Set(float64(seg.Version))
		reg.Histogram("stream_lag_ns", "Wall nanoseconds from segment append to all standing-query deltas emitted.").
			Observe(float64(time.Since(start).Nanoseconds()))
	}
	return deltas, nil
}

// audit measures one delta's realized accuracy: the fraction of the
// segment's ground-truth matches the served result retained. PPs only ever
// drop blobs, so retained/expected is exactly the per-segment realized
// accuracy the watchdog's target is stated in. A segment with no
// ground-truth matches carries no accuracy evidence (not audited).
func (in *Ingestor) audit(q standing, segBlobs []blob.Blob, resp *serve.Response) (bool, int, float64) {
	truth := make(map[int]bool, len(segBlobs))
	expected := 0
	for _, b := range segBlobs {
		ok, err := q.pred.Eval(in.cfg.Lookup(b))
		if err != nil {
			return false, 0, 0 // ground truth cannot answer this predicate
		}
		if ok {
			truth[b.ID] = true
			expected++
		}
	}
	if expected == 0 {
		return false, 0, 0
	}
	retained := 0
	for _, row := range resp.Result.Rows {
		if truth[row.Blob.ID] {
			retained++
		}
	}
	return true, expected, float64(retained) / float64(expected)
}

// train closes the per-segment feedback loop under the server's corpus lock:
// audited accuracies feed the watchdog (K consecutive breaches trip a
// clause's breaker, removing its PP), then a deterministic sample of the
// segment is labeled and observed, which is where incremental (re)training —
// warm-started when the online system is configured for it — actually runs.
func (in *Ingestor) train(seg Segment, segBlobs []blob.Blob, queries []standing, deltas []Delta) {
	sample := segBlobs
	if n := in.cfg.TrainSample; n > 0 && n < len(segBlobs) {
		rng := mathx.NewRNG(in.cfg.Seed ^ (seg.Version * 0x9E3779B97F4A7C15))
		perm := rng.Perm(len(segBlobs))
		sample = make([]blob.Blob, n)
		for i := 0; i < n; i++ {
			sample[i] = segBlobs[perm[i]]
		}
	}
	in.cfg.Server.SyncCorpus(func() {
		for i, d := range deltas {
			if !d.Audited {
				continue
			}
			in.cfg.Online.ReportAccuracy(d.Resp.Decision, d.Observed, queries[i].accuracy)
		}
		for _, b := range sample {
			// Observe may train (corpus.Add) — that is why the whole loop
			// holds the corpus lock.
			_ = in.cfg.Online.Observe(b, in.cfg.Lookup(b))
		}
	})
}

// BatchQuery runs one registered standing query over the entire corpus as a
// single session — the backfill path. Over the same corpus and PP state, its
// result is byte-identical to the concatenation of the query's per-segment
// deltas: the scan covers the same blobs in the same order and every engine
// operator charges per row.
func (in *Ingestor) BatchQuery(id string) (*serve.Response, error) {
	in.mu.RLock()
	var q *standing
	for i := range in.queries {
		if in.queries[i].id == id {
			q = &in.queries[i]
			break
		}
	}
	in.mu.RUnlock()
	if q == nil {
		return nil, fmt.Errorf("stream: no standing query %q", id)
	}
	blobs, version := in.cfg.Corpus.Snapshot()
	return in.cfg.Server.Do(serve.Request{
		ID:       fmt.Sprintf("%s#batch@v%d", q.id, version),
		Pred:     q.pred,
		Accuracy: q.accuracy,
		Blobs:    blobs,
	})
}

// Stats reports lifetime counters.
func (in *Ingestor) Stats() (segments, deltas uint64) {
	in.ingestMu.Lock()
	defer in.ingestMu.Unlock()
	return in.segments, in.deltas
}
