package stream

// Satellite battery: concurrency. Segment appends race standing-query
// evaluation, batch backfills, corpus snapshots and — with an online system
// wired in — watchdog trips and incremental retraining. Run with -race; the
// assertions themselves check consistency (every batch result is exactly the
// ground truth of the corpus version it served), the race detector checks
// for torn reads.

import (
	"fmt"
	"sync"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/online"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/serve"
)

func TestAppendRacesBatchQueries(t *testing.T) {
	st := newMiniStack(t, 4, nil, nil)
	st.register(t, Query{ID: "SQ1", Pred: "t=SUV"})
	const segSize, nSegs = 15, 20
	all := miniBlobs(segSize*nSegs, 17)
	// Ground-truth SUV count per corpus version (prefix of v segments); the
	// exact PP retains every positive, so a batch at version v must return
	// exactly truthAt[v] rows.
	truthAt := make([]int, nSegs+1)
	cnt := 0
	for i, b := range all {
		if miniTypes[int(b.Dense[fType])] == "SUV" {
			cnt++
		}
		if (i+1)%segSize == 0 {
			truthAt[(i+1)/segSize] = cnt
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := st.ing.BatchQuery("SQ1")
				if err != nil {
					errs <- err
					return
				}
				var v int
				if _, err := fmt.Sscanf(resp.ID, "SQ1#batch@v%d", &v); err != nil {
					errs <- fmt.Errorf("unparsable batch ID %q: %v", resp.ID, err)
					return
				}
				if got := len(resp.Result.Rows); got != truthAt[v] {
					errs <- fmt.Errorf("batch at v%d returned %d rows, want %d", v, got, truthAt[v])
					return
				}
				_ = st.corpus.Segments()
				_, _ = st.corpus.Snapshot()
				_ = st.corpus.Len()
			}
		}()
	}
	for i := 0; i < nSegs; i++ {
		if _, err := st.ing.Ingest(all[i*segSize : (i+1)*segSize]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := st.corpus.Version(); v != nSegs {
		t.Errorf("final version = %d, want %d", v, nSegs)
	}
}

// --- drift fixture: blobs whose ground truth inverts mid-stream ---

// A drift blob has two features: x0 ∈ [0,1) and a regime bit. Ground-truth
// speed is 80·x0 in regime 0 and 80·(1−x0) in regime 1 — so a PP trained
// pre-drift is exactly anti-correlated with post-drift truth, the worst-case
// drift the watchdog exists for.
func driftBlobs(n int, seed uint64, startID int, inverted bool) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	reg := 0.0
	if inverted {
		reg = 1
	}
	for i := range out {
		out[i] = blob.FromDense(startID+i, mathx.Vec{rng.Float64(), reg})
	}
	return out
}

func driftLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		if col != "s" {
			return query.Value{}, false
		}
		x := b.Dense[0]
		if b.Dense[1] != 0 {
			x = 1 - x
		}
		return query.Number(80 * x), true
	}
}

type driftUDF struct{ cost float64 }

func (u driftUDF) Name() string  { return "driftUDF" }
func (u driftUDF) Cost() float64 { return u.cost }
func (u driftUDF) Apply(r engine.Row) ([]engine.Row, error) {
	v, _ := driftLookup(r.Blob)("s")
	return []engine.Row{r.With("s", v)}, nil
}

// newDriftStack wires the full online streaming loop: the server plans over
// the online system's corpus (empty until the stream trains it), and the
// ingestor audits accuracy and feeds labels back per segment.
func newDriftStack(t *testing.T, workers int) (*miniStack, *online.System) {
	t.Helper()
	sys, err := online.New(online.Config{
		Clauses:      []string{"s>40"},
		MinLabels:    150,
		RetrainEvery: 100000, // only watchdog-triggered retraining
		BufferCap:    200,
		Train:        core.TrainConfig{Approach: "Raw+SVM", Seed: 42},
		WarmStart:    true,
		Seed:         7,
		Watchdog:     online.WatchdogConfig{K: 3, Margin: 0.15, FreshLabels: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Optimizer: optimizer.New(sys.Corpus()),
		Corpus:    &miniBuilder{udf: driftUDF{cost: 40}},
		Accuracy:  0.9,
		Exec:      engine.Config{NoStageOverhead: true, Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewSegmentedCorpus()
	ing, err := New(Config{Server: srv, Corpus: corpus, Online: sys, Lookup: driftLookup, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return &miniStack{corpus: corpus, srv: srv, ing: ing, ppCorpus: sys.Corpus()}, sys
}

func TestWatchdogTripAndRetrainRaceClean(t *testing.T) {
	st, sys := newDriftStack(t, 4)
	st.register(t, Query{ID: "D1", Pred: "s>40", Accuracy: 0.9})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.ing.BatchQuery("D1"); err != nil {
					errs <- err
					return
				}
				_ = st.srv.Stats()
				_ = sys.Breaker("s>40")
			}
		}()
	}

	const segSize = 40
	seg := 0
	ingest := func(n int, inverted bool) {
		for i := 0; i < n; i++ {
			blobs := driftBlobs(segSize, uint64(1000+seg), seg*segSize, inverted)
			if _, err := st.ing.Ingest(blobs); err != nil {
				t.Fatal(err)
			}
			seg++
		}
	}
	ingest(15, false) // train + serve healthy
	ingest(20, true)  // label distribution inverts: trip, fresh labels, retrain

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sys.Trainings < 2 {
		t.Errorf("Trainings = %d, want at least initial training + post-trip retraining", sys.Trainings)
	}
	if sys.Trips < 1 {
		t.Errorf("Trips = %d, want at least 1 (anti-correlated drift must trip the watchdog)", sys.Trips)
	}
}
