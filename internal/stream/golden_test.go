package stream

// Satellite battery: backfill-vs-live equivalence. Under frozen PP state,
// running a standing query segment-by-segment and concatenating the deltas
// must reproduce — byte for byte, in blob-ID order — the one-shot batch query
// over the same corpus, at every segmentation and worker count.

import (
	"fmt"
	"math"
	"testing"
)

// goldenSplits covers the segmentation shapes that break naive streaming:
// single segment, even halves, a 1-blob segment, and empty (heartbeat)
// segments at the front and middle.
var goldenSplits = [][]int{
	nil,
	{150},
	{60, 61, 200},
	{0, 100, 100, 250},
}

func TestBackfillVsLiveGolden(t *testing.T) {
	// The rendered results must also agree across worker counts; collect
	// every run's rendering per query and compare globally at the end.
	global := map[string]map[string]string{} // query → run label → rendering
	for _, workers := range []int{1, 4} {
		for si, cuts := range goldenSplits {
			name := fmt.Sprintf("workers=%d/split=%d", workers, si)
			t.Run(name, func(t *testing.T) {
				all := miniBlobs(300, 11)
				st := newMiniStack(t, workers, nil, nil)
				st.register(t, miniStandingQueries...)
				var deltas [][]Delta
				for _, seg := range splitSegments(all, cuts) {
					ds, err := st.ing.Ingest(seg)
					if err != nil {
						t.Fatal(err)
					}
					deltas = append(deltas, ds)
				}
				for _, q := range miniStandingQueries {
					batch, err := st.ing.BatchQuery(q.ID)
					if err != nil {
						t.Fatal(err)
					}
					want := renderRows(batch)
					got := renderLive(deltas, q.ID)
					if got != want {
						t.Errorf("%s live != batch\n live: %s\nbatch: %s", q.ID, got, want)
					}
					// Virtual cluster cost is charged per row, so the split
					// changes only float association, never the total.
					lc, bc := liveCluster(deltas, q.ID), batch.Result.ClusterTime
					if math.Abs(lc-bc) > 1e-6*math.Max(1, bc) {
						t.Errorf("%s live cluster %v != batch %v", q.ID, lc, bc)
					}
					if global[q.ID] == nil {
						global[q.ID] = map[string]string{}
					}
					global[q.ID][name] = want
				}
			})
		}
	}
	for id, runs := range global {
		var ref string
		for _, r := range runs {
			ref = r
			break
		}
		for name, r := range runs {
			if r != ref {
				t.Errorf("%s: run %s rendered differently from other runs", id, name)
			}
		}
	}
}
