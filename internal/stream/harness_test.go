package stream

// Test harness: the serve package's "mini traffic" fixture rebuilt around
// streaming ingestion — the same dense-feature blob scheme and seeded PP
// corpus, but plan assembly goes through a serve.CorpusBuilder (BuildOver)
// so each segment's standing-query session scans exactly that segment.
// Everything is seeded and deterministic.

import (
	"fmt"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/serve"
)

// Feature layout of a mini traffic blob.
const (
	fType  = 0 // vehicle type index 0..3
	fColor = 1 // color index 0..4
	fSpeed = 2 // speed 0..80
	fNoise = 3 // per-blob noise making speed PPs imperfect
)

var (
	miniTypes  = []string{"sedan", "SUV", "truck", "van"}
	miniColors = []string{"white", "black", "silver", "red", "other"}
)

func miniBlobs(n int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		t := rng.Choice([]float64{0.45, 0.25, 0.14, 0.16})
		c := rng.Choice([]float64{0.33, 0.25, 0.20, 0.12, 0.10})
		s := mathx.Clamp(40+rng.NormFloat64()*15, 0, 80)
		out[i] = blob.FromDense(i, mathx.Vec{float64(t), float64(c), s, rng.NormFloat64()})
	}
	return out
}

func miniLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		switch col {
		case "t":
			return query.Str(miniTypes[int(b.Dense[fType])]), true
		case "c":
			return query.Str(miniColors[int(b.Dense[fColor])]), true
		case "s":
			return query.Number(b.Dense[fSpeed]), true
		}
		return query.Value{}, false
	}
}

func miniSet(t *testing.T, blobs []blob.Blob, pred string) blob.Set {
	t.Helper()
	p := query.MustParse(pred)
	var s blob.Set
	for _, b := range blobs {
		ok, err := p.Eval(miniLookup(b))
		if err != nil {
			t.Fatalf("labeling %q: %v", pred, err)
		}
		s.Append(b, ok)
	}
	return s
}

type exactScorer struct {
	dim  int
	want float64
	cost float64
}

func (s exactScorer) Score(x mathx.Vec) float64 {
	if x[s.dim] == s.want {
		return 1
	}
	return -1
}
func (s exactScorer) Name() string  { return "exact" }
func (s exactScorer) Cost() float64 { return s.cost }

type speedScorer struct {
	sign  float64
	noise float64
	cost  float64
}

func (s speedScorer) Score(x mathx.Vec) float64 {
	return s.sign * (x[fSpeed] + x[fNoise]*s.noise)
}
func (s speedScorer) Name() string  { return "speed" }
func (s speedScorer) Cost() float64 { return s.cost }

func miniCorpus(t *testing.T, val []blob.Blob) *optimizer.Corpus {
	t.Helper()
	c := optimizer.NewCorpus()
	id := dimred.Identity{Dim: 4}
	addExact := func(clause string, dim int, want float64, cost float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, exactScorer{dim: dim, want: want, cost: cost}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for i, typ := range miniTypes {
		addExact("t="+typ, fType, float64(i), 1.0)
	}
	for i, col := range miniColors {
		addExact("c="+col, fColor, float64(i), 1.0)
	}
	addSpeed := func(clause string, sign float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, speedScorer{sign: sign, noise: 4, cost: 1.2}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for _, v := range []string{"40", "50", "60"} {
		addSpeed("s>"+v, 1)
	}
	for _, v := range []string{"65", "70"} {
		addSpeed("s<"+v, -1)
	}
	return c
}

func miniDomains() map[string][]query.Value {
	d := map[string][]query.Value{}
	for _, t := range miniTypes {
		d["t"] = append(d["t"], query.Str(t))
	}
	for _, c := range miniColors {
		d["c"] = append(d["c"], query.Str(c))
	}
	for s := 0.0; s <= 80; s += 10 {
		d["s"] = append(d["s"], query.Number(s))
	}
	return d
}

// miniUDF materializes t/c/s columns from the encoded features, standing in
// for the detector+attribute pipeline the PP short-circuits.
type miniUDF struct{ cost float64 }

func (u miniUDF) Name() string  { return "miniUDF" }
func (u miniUDF) Cost() float64 { return u.cost }
func (u miniUDF) Apply(r engine.Row) ([]engine.Row, error) {
	lk := miniLookup(r.Blob)
	out := r
	for _, col := range []string{"t", "c", "s"} {
		v, _ := lk(col)
		out = out.With(col, v)
	}
	return []engine.Row{out}, nil
}

// miniBuilder implements serve.CorpusBuilder: scan over the given blobs →
// [PP filter] → UDF → σ.
type miniBuilder struct{ udf engine.Processor }

func (b *miniBuilder) UDFCost(query.Pred) (float64, error) { return b.udf.Cost(), nil }

func (b *miniBuilder) BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	if filter != nil {
		ops = append(ops, &engine.PPFilter{F: filter})
	}
	ops = append(ops, &engine.Process{P: b.udf}, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, nil
}

// miniStack is one fully wired streaming fixture: segmented corpus, server
// planning over a pretrained (frozen unless Online is wired) PP corpus, and
// an Ingestor.
type miniStack struct {
	ppCorpus *optimizer.Corpus
	corpus   *SegmentedCorpus
	srv      *serve.Server
	ing      *Ingestor
}

// newMiniStack wires the fixture. workers sets engine parallelism; mutateSrv
// and mutateIng adjust the configs before construction (nil for defaults —
// frozen PP state, no online system).
func newMiniStack(t *testing.T, workers int, mutateSrv func(*serve.Config), mutateIng func(*Config)) *miniStack {
	t.Helper()
	val := miniBlobs(400, 8)
	ppc := miniCorpus(t, val)
	scfg := serve.Config{
		Optimizer: optimizer.New(ppc),
		Corpus:    &miniBuilder{udf: miniUDF{cost: 40}},
		Accuracy:  0.95,
		Domains:   miniDomains(),
		Exec:      engine.Config{NoStageOverhead: true, Workers: workers},
	}
	if mutateSrv != nil {
		mutateSrv(&scfg)
	}
	srv, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewSegmentedCorpus()
	icfg := Config{Server: srv, Corpus: corpus}
	if mutateIng != nil {
		mutateIng(&icfg)
	}
	ing, err := New(icfg)
	if err != nil {
		t.Fatal(err)
	}
	return &miniStack{ppCorpus: ppc, corpus: corpus, srv: srv, ing: ing}
}

// register installs standing queries or fails the test.
func (s *miniStack) register(t *testing.T, qs ...Query) {
	t.Helper()
	for _, q := range qs {
		if err := s.ing.Register(q); err != nil {
			t.Fatal(err)
		}
	}
}

// renderRows flattens a response's result rows into the canonical byte form
// backfill-vs-live equivalence is stated in: every output blob ID in order.
// Cost fields are deliberately excluded — splitting one scan into N charges
// identical per-row costs but may accumulate them in a different floating-
// point association, so costs are compared with a tolerance instead.
func renderRows(r *serve.Response) string {
	var sb strings.Builder
	for i, row := range r.Result.Rows {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", row.Blob.ID)
	}
	return sb.String()
}

// renderLive concatenates one standing query's deltas, in segment order,
// into the same canonical form as renderRows over the batch result.
func renderLive(deltas [][]Delta, queryID string) string {
	var parts []string
	for _, segDeltas := range deltas {
		for _, d := range segDeltas {
			if d.Query != queryID || len(d.Resp.Result.Rows) == 0 {
				continue
			}
			parts = append(parts, renderRows(d.Resp))
		}
	}
	return strings.Join(parts, ",")
}

// liveCluster sums a standing query's per-delta cluster times.
func liveCluster(deltas [][]Delta, queryID string) float64 {
	var total float64
	for _, segDeltas := range deltas {
		for _, d := range segDeltas {
			if d.Query == queryID {
				total += d.Resp.Result.ClusterTime
			}
		}
	}
	return total
}

// splitSegments cuts blobs into segments at the given cut points (each a
// strictly increasing index into blobs).
func splitSegments(blobs []blob.Blob, cuts []int) [][]blob.Blob {
	var segs [][]blob.Blob
	prev := 0
	for _, c := range cuts {
		segs = append(segs, blobs[prev:c])
		prev = c
	}
	return append(segs, blobs[prev:])
}

// miniStandingQueries is the standing workload used by the golden and
// property tests: overlapping clauses across columns, exact and noisy PPs,
// a conjunction and a disjunction.
var miniStandingQueries = []Query{
	{ID: "SQ1", Pred: "t=SUV", Accuracy: 0.95},
	{ID: "SQ2", Pred: "c=red", Accuracy: 0.95},
	{ID: "SQ3", Pred: "s>60", Accuracy: 0.9},
	{ID: "SQ4", Pred: "t=SUV & s>60", Accuracy: 0.9},
	{ID: "SQ5", Pred: "t=truck | t=van", Accuracy: 0.95},
}
