package stream

// Property test: for ANY segmentation of a fixed corpus — random cut points,
// including empty segments — a standing query's cumulative live results equal
// the one-shot batch query, and the batch result itself is independent of how
// the corpus arrived. Seeded, deterministic trials.

import (
	"fmt"
	"testing"

	"probpred/internal/mathx"
)

func TestRandomSegmentationProperty(t *testing.T) {
	const trials = 20
	all := miniBlobs(240, 13)
	rng := mathx.NewRNG(99)
	reference := map[string]string{} // query → trial-0 batch rendering
	for trial := 0; trial < trials; trial++ {
		// Random cuts: each boundary independently, plus an occasional
		// duplicate (an empty segment).
		var cuts []int
		for i := 1; i < len(all); i++ {
			if rng.Float64() < 0.03 {
				cuts = append(cuts, i)
				if rng.Float64() < 0.2 {
					cuts = append(cuts, i)
				}
			}
		}
		t.Run(fmt.Sprintf("trial=%d/segments=%d", trial, len(cuts)+1), func(t *testing.T) {
			st := newMiniStack(t, 1, nil, nil)
			st.register(t, miniStandingQueries...)
			var deltas [][]Delta
			for _, seg := range splitSegments(all, cuts) {
				ds, err := st.ing.Ingest(seg)
				if err != nil {
					t.Fatal(err)
				}
				deltas = append(deltas, ds)
			}
			for _, q := range miniStandingQueries {
				batch, err := st.ing.BatchQuery(q.ID)
				if err != nil {
					t.Fatal(err)
				}
				want := renderRows(batch)
				if got := renderLive(deltas, q.ID); got != want {
					t.Errorf("%s cumulative != batch over cuts %v\n got: %s\nwant: %s", q.ID, cuts, got, want)
				}
				if ref, ok := reference[q.ID]; !ok {
					reference[q.ID] = want
				} else if want != ref {
					t.Errorf("%s batch result depends on segmentation (cuts %v)", q.ID, cuts)
				}
			}
		})
	}
}
