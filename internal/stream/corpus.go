// Package stream implements streaming ingestion (ROADMAP item 4, the live
// scenarios the paper gestures at in Appendix B): an append-only,
// segment-versioned blob corpus plus standing queries — registered predicates
// that PP-filter each new segment as it lands and emit incremental result
// deltas whose concatenation is byte-identical to the one-shot batch query
// over the same corpus and PP state.
//
// The corpus half is SegmentedCorpus: blobs arrive in segments, each append
// advances a monotonically increasing corpus version and records the
// segment's blob range. Appended data is immutable, so readers holding a
// snapshot or a segment's blob slice never observe torn state while later
// segments land.
//
// The query half is Ingestor: Ingest appends one segment and runs every
// standing query over exactly that segment through a serve.Server
// (Request.Blobs), sharing the server's plan and score caches across
// segments — per-clause PP training on one column leaves every other query's
// cached plan untouched (partial invalidation). With an online.System
// attached, each segment also audits realized accuracy against ground truth
// (feeding the watchdog's trip → retrain → probation cycle) and labels a
// sample of the segment for incremental, warm-started PP training.
package stream

import (
	"sync"

	"probpred/internal/blob"
)

// Segment describes one appended batch of blobs.
type Segment struct {
	// Index is the segment's 0-based arrival order.
	Index int
	// Version is the corpus version after the segment landed (Index+1):
	// the segment-granular counter standing queries and logs are tagged
	// with.
	Version uint64
	// Start and End delimit the segment's blob range [Start, End) within
	// the full corpus.
	Start, End int
}

// Len returns the number of blobs in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// SegmentedCorpus is an append-only blob corpus versioned per segment.
// Appends and reads may race freely: appended blobs are immutable and the
// backing slice only grows, so a snapshot taken at version v keeps reading
// exactly the first v segments however many land afterwards.
type SegmentedCorpus struct {
	mu    sync.RWMutex
	blobs []blob.Blob
	segs  []Segment
}

// NewSegmentedCorpus returns an empty corpus at version 0.
func NewSegmentedCorpus() *SegmentedCorpus {
	return &SegmentedCorpus{}
}

// Append lands one segment: the blobs are copied into the corpus (the caller
// may reuse its slice), the version advances by one, and the new segment is
// returned. Empty appends are legal and still advance the version — a
// heartbeat segment.
func (c *SegmentedCorpus) Append(blobs []blob.Blob) Segment {
	c.mu.Lock()
	defer c.mu.Unlock()
	seg := Segment{
		Index:   len(c.segs),
		Version: uint64(len(c.segs)) + 1,
		Start:   len(c.blobs),
		End:     len(c.blobs) + len(blobs),
	}
	c.blobs = append(c.blobs, blobs...)
	c.segs = append(c.segs, seg)
	return seg
}

// Version returns the corpus version: the number of segments appended.
func (c *SegmentedCorpus) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(len(c.segs))
}

// Len returns the total number of blobs across all segments.
func (c *SegmentedCorpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blobs)
}

// Segments returns a copy of the segment index.
func (c *SegmentedCorpus) Segments() []Segment {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Segment(nil), c.segs...)
}

// Snapshot returns the corpus's blobs and version as one consistent pair:
// the slice covers exactly the segments counted by the version, and stays
// valid (and unchanged) under concurrent appends. The slice is shared, not
// copied — callers must treat it as read-only.
func (c *SegmentedCorpus) Snapshot() ([]blob.Blob, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blobs[:len(c.blobs):len(c.blobs)], uint64(len(c.segs))
}

// Blobs returns the blob slice of one segment (shared, read-only). The
// segment must have been returned by this corpus's Append or Segments.
func (c *SegmentedCorpus) Blobs(seg Segment) []blob.Blob {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blobs[seg.Start:seg.End:seg.End]
}
