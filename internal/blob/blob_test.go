package blob

import (
	"testing"

	"probpred/internal/mathx"
)

func TestFromDense(t *testing.T) {
	b := FromDense(1, mathx.Vec{1, 2, 3})
	if b.IsSparse() || b.Dim() != 3 || b.ID != 1 {
		t.Fatalf("bad dense blob: %+v", b)
	}
	if v := b.DenseVec(); v[2] != 3 {
		t.Fatalf("DenseVec = %v", v)
	}
}

func TestFromSparse(t *testing.T) {
	s := mathx.NewSparse(5, []int{1, 3}, []float64{2, 4})
	b := FromSparse(2, s)
	if !b.IsSparse() || b.Dim() != 5 {
		t.Fatalf("bad sparse blob: %+v", b)
	}
	d := b.DenseVec()
	if d[1] != 2 || d[3] != 4 || d[0] != 0 {
		t.Fatalf("DenseVec = %v", d)
	}
}

func TestTruthVal(t *testing.T) {
	b := Blob{Truth: map[string]float64{"speed": 65}}
	if v, ok := b.TruthVal("speed"); !ok || v != 65 {
		t.Fatal("TruthVal miss")
	}
	if _, ok := b.TruthVal("absent"); ok {
		t.Fatal("TruthVal false positive")
	}
}

func makeSet(n, npos int) Set {
	var s Set
	for i := 0; i < n; i++ {
		s.Append(FromDense(i, mathx.Vec{float64(i)}), i < npos)
	}
	return s
}

func TestSetSelectivity(t *testing.T) {
	s := makeSet(10, 3)
	if s.Positives() != 3 {
		t.Fatalf("Positives = %d", s.Positives())
	}
	if s.Selectivity() != 0.3 {
		t.Fatalf("Selectivity = %v", s.Selectivity())
	}
	if (Set{}).Selectivity() != 0 {
		t.Fatal("empty selectivity should be 0")
	}
}

func TestSplitFractionsAndDisjointness(t *testing.T) {
	s := makeSet(100, 40)
	train, val, test := s.Split(mathx.NewRNG(1), 0.6, 0.2)
	if train.Len() != 60 || val.Len() != 20 || test.Len() != 20 {
		t.Fatalf("split sizes = %d/%d/%d", train.Len(), val.Len(), test.Len())
	}
	seen := map[int]bool{}
	for _, sub := range []Set{train, val, test} {
		for _, b := range sub.Blobs {
			if seen[b.ID] {
				t.Fatalf("blob %d appears twice", b.ID)
			}
			seen[b.ID] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("lost blobs: %d", len(seen))
	}
}

func TestSplitPreservesLabels(t *testing.T) {
	s := makeSet(50, 20)
	train, val, test := s.Split(mathx.NewRNG(2), 0.5, 0.3)
	total := train.Positives() + val.Positives() + test.Positives()
	if total != 20 {
		t.Fatalf("labels lost in split: %d positives", total)
	}
}

func TestSampleSize(t *testing.T) {
	s := makeSet(100, 50)
	sub := s.Sample(mathx.NewRNG(3), 10)
	if sub.Len() != 10 {
		t.Fatalf("Sample len = %d", sub.Len())
	}
	// Sampling more than available returns the whole set.
	all := s.Sample(mathx.NewRNG(3), 1000)
	if all.Len() != 100 {
		t.Fatalf("over-sample len = %d", all.Len())
	}
}

func TestAnySparseAndDim(t *testing.T) {
	var s Set
	s.Append(FromDense(0, mathx.Vec{1, 2}), true)
	if s.AnySparse() {
		t.Fatal("dense set reported sparse")
	}
	if s.Dim() != 2 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	s.Append(FromSparse(1, mathx.NewSparse(2, nil, nil)), false)
	if !s.AnySparse() {
		t.Fatal("sparse not detected")
	}
	if (Set{}).Dim() != 0 {
		t.Fatal("empty Dim should be 0")
	}
}
