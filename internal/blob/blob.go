// Package blob defines the raw unstructured input representation that
// probabilistic predicates score and that expensive UDFs consume.
//
// A Blob is the paper's "data blob": a video frame, an image, a document in
// bag-of-words form. Its feature representation is deliberately simple (§5.6
// "Input feature to PP"): a dense vector (raw pixels, concatenated frames) or
// a sparse vector (tokenized word frequencies).
package blob

import "probpred/internal/mathx"

// Blob is a single unstructured input item. Exactly one of Dense and Sparse
// is set. ID identifies the blob within its dataset; Truth optionally carries
// the generator's ground-truth payload (attribute values) used by simulated
// UDFs and by experiment metrics — real systems obviously do not have it, and
// no PP code reads it.
type Blob struct {
	ID     int
	Dense  mathx.Vec
	Sparse *mathx.Sparse
	Truth  map[string]float64
}

// FromDense wraps a dense feature vector as a Blob.
func FromDense(id int, v mathx.Vec) Blob { return Blob{ID: id, Dense: v} }

// FromSparse wraps a sparse feature vector as a Blob.
func FromSparse(id int, s mathx.Sparse) Blob { return Blob{ID: id, Sparse: &s} }

// IsSparse reports whether the blob carries a sparse representation.
func (b Blob) IsSparse() bool { return b.Sparse != nil }

// Dim returns the feature dimensionality.
func (b Blob) Dim() int {
	if b.Sparse != nil {
		return b.Sparse.Dim
	}
	return len(b.Dense)
}

// DenseVec returns the blob's features as a dense vector, materializing a
// sparse blob if necessary.
func (b Blob) DenseVec() mathx.Vec {
	if b.Sparse != nil {
		return b.Sparse.Dense()
	}
	return b.Dense
}

// TruthVal returns the ground-truth attribute value for key, and whether it
// exists. Only simulated UDFs and experiment metrics call this.
func (b Blob) TruthVal(key string) (float64, bool) {
	v, ok := b.Truth[key]
	return v, ok
}

// Set is a collection of blobs with parallel binary labels (+1 = the blob
// satisfies the predicate clause under consideration, per §5: ℓ(x)).
type Set struct {
	Blobs  []Blob
	Labels []bool
}

// Len returns the number of blobs in the set.
func (s Set) Len() int { return len(s.Blobs) }

// Positives returns the number of +1 labels.
func (s Set) Positives() int {
	n := 0
	for _, l := range s.Labels {
		if l {
			n++
		}
	}
	return n
}

// Selectivity returns the fraction of blobs labeled +1.
func (s Set) Selectivity() float64 {
	if s.Len() == 0 {
		return 0
	}
	return float64(s.Positives()) / float64(s.Len())
}

// Append adds a labeled blob to the set.
func (s *Set) Append(b Blob, label bool) {
	s.Blobs = append(s.Blobs, b)
	s.Labels = append(s.Labels, label)
}

// Split partitions the set into train/validation/test subsets by the given
// fractions (which must sum to at most 1) using a deterministic shuffle from
// rng. The paper uses 60/20/20 for the micro-benchmarks (§8.1) and 80/20
// train/validation for TRAF-20 (§8.2).
func (s Set) Split(rng *mathx.RNG, trainFrac, valFrac float64) (train, val, test Set) {
	n := s.Len()
	perm := rng.Perm(n)
	nTrain := int(trainFrac * float64(n))
	nVal := int(valFrac * float64(n))
	for i, p := range perm {
		switch {
		case i < nTrain:
			train.Append(s.Blobs[p], s.Labels[p])
		case i < nTrain+nVal:
			val.Append(s.Blobs[p], s.Labels[p])
		default:
			test.Append(s.Blobs[p], s.Labels[p])
		}
	}
	return train, val, test
}

// Sample returns a uniformly sampled subset of at most n labeled blobs,
// used by model selection (§5.5) to estimate r(a] quickly.
func (s Set) Sample(rng *mathx.RNG, n int) Set {
	if n >= s.Len() {
		return s
	}
	perm := rng.Perm(s.Len())
	var out Set
	for _, p := range perm[:n] {
		out.Append(s.Blobs[p], s.Labels[p])
	}
	return out
}

// AnySparse reports whether any blob in the set is sparse.
func (s Set) AnySparse() bool {
	for _, b := range s.Blobs {
		if b.IsSparse() {
			return true
		}
	}
	return false
}

// Dim returns the feature dimensionality of the set (taken from the first
// blob; generators produce homogeneous sets). It returns 0 for an empty set.
func (s Set) Dim() int {
	if s.Len() == 0 {
		return 0
	}
	return s.Blobs[0].Dim()
}
