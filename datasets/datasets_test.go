package datasets

import (
	"testing"

	probpred "probpred"
)

func TestTrafficWorkflowThroughPublicAPI(t *testing.T) {
	blobs := Traffic(TrafficConfig{Rows: 500, Seed: 1})
	if len(blobs) != 500 {
		t.Fatalf("rows = %d", len(blobs))
	}
	pred, err := probpred.ParsePredicate("t=SUV & s>50")
	if err != nil {
		t.Fatal(err)
	}
	set, err := TrafficSet(blobs, pred)
	if err != nil {
		t.Fatal(err)
	}
	if set.Selectivity() <= 0 || set.Selectivity() >= 1 {
		t.Fatalf("selectivity = %v", set.Selectivity())
	}
	procs, u, err := TrafficPipeline(pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 { // detector + t + s
		t.Fatalf("procs = %d", len(procs))
	}
	if u <= 0 {
		t.Fatalf("pipeline cost = %v", u)
	}
	if len(TrafficDomains()) != 5 {
		t.Fatalf("domains = %d columns", len(TrafficDomains()))
	}
	// Lookup agrees with TrafficSet labels.
	ok, err := pred.Eval(TrafficLookup(blobs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if ok != set.Labels[0] {
		t.Fatal("lookup disagrees with labeling")
	}
}

func TestCategoricalGenerators(t *testing.T) {
	cases := []struct {
		name string
		d    *Categorical
	}{
		{"lshtc", LSHTC(LSHTCConfig{Docs: 200, Seed: 2})},
		{"coco", COCO(2)},
		{"imagenet", ImageNet(2)},
		{"sun", SUNAttribute(2)},
		{"ucf101", UCF101(UCFConfig{Clips: 200, Seed: 2})},
	}
	for _, c := range cases {
		if len(c.d.Blobs) == 0 || c.d.NumCategories() == 0 {
			t.Fatalf("%s: empty dataset", c.name)
		}
		set := c.d.SetFor(0)
		if set.Len() != len(c.d.Blobs) {
			t.Fatalf("%s: SetFor size mismatch", c.name)
		}
	}
}

func TestVideoStreamHelpers(t *testing.T) {
	v := Coral(CoralConfig{Frames: 300, Seed: 3})
	set := SetFromStream(v)
	if set.Len() != 300 {
		t.Fatalf("frames = %d", set.Len())
	}
	det := FrameDetectorUDF(0)
	if det.Cost() != 500 {
		t.Fatalf("detector cost = %v", det.Cost())
	}
	sq := Square(CoralConfig{Frames: 300, Seed: 3})
	if sq.Name != "square" {
		t.Fatalf("square name = %q", sq.Name)
	}
}

func TestCategoryUDFThroughPublicAPI(t *testing.T) {
	d := LSHTC(LSHTCConfig{Docs: 200, Seed: 4})
	u := CategoryUDF(d, 1, 25)
	if u.Cost() != 25 {
		t.Fatalf("cost = %v", u.Cost())
	}
	pred, err := probpred.ParsePredicate(CategoryColumn(1) + "=1")
	if err != nil {
		t.Fatal(err)
	}
	plan := probpred.BuildPlan(d.Blobs, nil, []probpred.Processor{u}, pred)
	res, err := probpred.RunPlan(plan, probpred.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, m := range d.Members[1] {
		if m {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
}
