// Package datasets exposes the repository's synthetic dataset generators —
// the stand-ins for the paper's evaluation datasets (§7) — as public API so
// examples and downstream users can reproduce the workloads. See DESIGN.md
// for what each generator substitutes and why the substitution preserves
// the behaviour that matters to probabilistic predicates.
package datasets

import (
	probpred "probpred"
	"probpred/internal/data"
	"probpred/internal/udf"
)

// Categorical is a dataset whose blobs carry category labels; queries
// retrieve blobs having a given category.
type Categorical = data.Categorical

// VideoStream is a synthetic fixed-camera surveillance stream.
type VideoStream = data.VideoStream

// LSHTCConfig, TrafficConfig, UCFConfig and CoralConfig shape the
// corresponding generators.
type (
	LSHTCConfig   = data.LSHTCConfig
	TrafficConfig = data.TrafficConfig
	UCFConfig     = data.UCFConfig
	CoralConfig   = data.CoralConfig
)

// LSHTC generates the sparse document-classification dataset (LSHTC-like).
func LSHTC(cfg LSHTCConfig) *Categorical { return data.LSHTC(cfg) }

// COCO generates the dense, non-linearly-separable image dataset
// (COCO-like).
func COCO(seed uint64) *Categorical { return data.COCO(seed) }

// ImageNet generates the same classes as COCO under a domain shift
// (ImageNet-like), for cross-training experiments.
func ImageNet(seed uint64) *Categorical { return data.ImageNet(seed) }

// SUNAttribute generates the simpler scene-attribute dataset
// (SUNAttribute-like).
func SUNAttribute(seed uint64) *Categorical { return data.SUNAttribute(seed) }

// UCF101 generates the multi-modal video-activity dataset (UCF101-like).
func UCF101(cfg UCFConfig) *Categorical { return data.UCF101(cfg) }

// Traffic generates the DETRAC-like vehicle-detection stream whose blobs
// carry ground-truth attributes t (type), c (color), s (speed), i/o (route).
func Traffic(cfg TrafficConfig) []probpred.Blob { return data.Traffic(cfg) }

// Coral and Square generate the Appendix-B surveillance clips.
func Coral(cfg CoralConfig) *VideoStream  { return data.Coral(cfg) }
func Square(cfg CoralConfig) *VideoStream { return data.Square(cfg) }

// TrafficSet labels traffic blobs against a predicate over the ground-truth
// attributes, producing PP training input.
func TrafficSet(blobs []probpred.Blob, pred probpred.Pred) (probpred.Set, error) {
	return data.TrafficSet(blobs, pred)
}

// TrafficDomains returns the finite value domains of the traffic columns,
// enabling the optimizer's wrangler rewrites.
func TrafficDomains() map[string][]probpred.Value { return data.TrafficDomains() }

// TrafficLookup adapts a traffic blob's ground truth to predicate
// evaluation.
func TrafficLookup(b probpred.Blob) probpred.Lookup { return data.TrafficLookup(b) }

// TrafficPipeline builds the simulated UDF chain (detector plus one
// attribute classifier per referenced column) a predicate needs; the summed
// cost of the returned processors is the u that PPs can short-circuit.
func TrafficPipeline(pred probpred.Pred, seed uint64) ([]probpred.Processor, float64, error) {
	procs, err := udf.TrafficPipeline(pred, 0, seed)
	if err != nil {
		return nil, 0, err
	}
	return procs, udf.PipelineCost(procs), nil
}

// CategoryUDF returns the simulated classifier UDF emitting the binary
// column for category cat of a categorical dataset, at the given virtual
// per-row cost.
func CategoryUDF(d *Categorical, cat int, costMS float64) probpred.Processor {
	return &udf.CategoryClassifier{Dataset: d, Cat: cat, CostMS: costMS}
}

// CategoryColumn names the column CategoryUDF(cat) produces.
func CategoryColumn(cat int) string { return udf.ColName(cat) }

// FrameDetectorUDF returns the very expensive reference object detector of
// the video pipelines (zero cost selects the default 500 vms/frame).
func FrameDetectorUDF(costMS float64) probpred.Processor {
	return udf.FrameObjectDetector{CostMS: costMS}
}

// SetFromStream returns a labeled blob set over a video stream's frames
// ("has object" labels) for PP training.
func SetFromStream(v *VideoStream) probpred.Set { return v.Set() }
