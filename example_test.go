package probpred_test

// Runnable godoc examples for the public API. Outputs are deterministic —
// every random draw flows through the seeded RNG.

import (
	"fmt"

	probpred "probpred"
	"probpred/datasets"
)

// Example demonstrates the core workflow end to end: train a PP for one
// clause, inspect its parametric accuracy/reduction trade-off, and use it
// to shortcut an expensive UDF.
func Example() {
	// Label blobs for the clause (in a real system, from UDF outputs).
	rng := probpred.NewRNG(7)
	var all probpred.Set
	for i := 0; i < 2000; i++ {
		x := probpred.Vec{rng.NormFloat64(), rng.NormFloat64()}
		all.Append(probpred.FromDense(i, x), x[0]+0.5*x[1] > 1.1)
	}
	train, val, _ := all.Split(rng, 0.6, 0.2)

	pp, err := probpred.TrainPP("interesting=1", train, val, probpred.TrainConfig{
		Approach: "Raw+SVM", Seed: 1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The same trained PP serves any accuracy target (no retraining).
	fmt.Println("substantial reduction at a=1:", pp.Reduction(1.0) > 0.5)
	fmt.Println("relaxing accuracy never reduces r:", pp.Reduction(0.9) >= pp.Reduction(1.0))
	// Output:
	// substantial reduction at a=1: true
	// relaxing accuracy never reduces r: true
}

// ExampleOptimizer_Optimize shows the optimizer assembling a PP combination
// for a complex predicate no PP was trained for.
func ExampleOptimizer_Optimize() {
	blobs := datasets.Traffic(datasets.TrafficConfig{Rows: 3000, Seed: 5})
	corpus := probpred.NewCorpus()
	for i, clause := range []string{"t=SUV", "t=van", "c=red"} {
		pred, _ := probpred.ParsePredicate(clause)
		set, _ := datasets.TrafficSet(blobs, pred)
		train, val, _ := set.Split(probpred.NewRNG(uint64(i)+50), 0.8, 0.2)
		pp, err := probpred.TrainPP(clause, train, val, probpred.TrainConfig{
			Approach: "Raw+SVM", Seed: uint64(i),
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		corpus.Add(pp)
	}
	opt := probpred.NewOptimizer(corpus)
	// An ad-hoc predicate: never trained, assembled from per-clause PPs.
	pred, _ := probpred.ParsePredicate("(t=SUV | t=van) & c=red")
	dec, err := opt.Optimize(pred, probpred.OptimizeOptions{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("injected:", dec.Inject)
	fmt.Println("expression:", dec.Expr)
	// The optimizer canonicalizes the predicate before searching (sorted
	// kids), so the spelling of the input never changes the chosen plan —
	// here the two orderings cost the same and the canonical one wins.
	// Output:
	// injected: true
	// expression: PP[c=red] & (PP[t=SUV] | PP[t=van])
}

// ExampleInferClauses shows batch workload analysis: which simple clauses a
// historical workload needs PPs for.
func ExampleInferClauses() {
	var preds []probpred.Pred
	for _, q := range []string{"t=SUV & c=red", "t=SUV & s>60", "c=red | c=black"} {
		p, _ := probpred.ParsePredicate(q)
		preds = append(preds, p)
	}
	freq := probpred.InferClauses(preds, nil)
	fmt.Println("t=SUV appears in", freq["t=SUV"], "queries")
	fmt.Println("c=red appears in", freq["c=red"], "queries")
	// Output:
	// t=SUV appears in 2 queries
	// c=red appears in 2 queries
}

// ExampleSelectTrainingSet shows the budgeted training planner choosing
// which PPs to train (the greedy approximation of Appendix A.1).
func ExampleSelectTrainingSet() {
	candidates := []probpred.TrainingCandidate{
		{Clause: "t=SUV", TrainCost: 10, Queries: map[int]float64{0: 0.6, 1: 0.6}},
		{Clause: "c=red", TrainCost: 10, Queries: map[int]float64{2: 0.5}},
		{Clause: "s>60", TrainCost: 10, Queries: map[int]float64{3: 0.4}},
	}
	plan, err := probpred.SelectTrainingSet(candidates, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("train:", plan.Clauses)
	fmt.Println("queries covered:", plan.Covered)
	// Output:
	// train: [c=red t=SUV]
	// queries covered: 3
}
