package probpred

// One benchmark per paper table/figure (regenerating it end-to-end via the
// experiment harness), plus micro-benchmarks of the primitives that back
// Table 2's complexity claims and Table 5's latency measurements.
//
// The experiment benchmarks run the harness at its quick scale so that
// `go test -bench=.` completes in minutes; `cmd/ppbench` runs the full
// scale and prints the regenerated tables (recorded in EXPERIMENTS.md).

import (
	"testing"

	"probpred/internal/bench"
	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/dnn"
	"probpred/internal/kde"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/svm"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Seed: 42, Quick: true}
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (reduction whiskers per dataset).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable4 regenerates Table 4 (reduction by approach & accuracy).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (train/test latency, optimality).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table 6 (PP vs Joglekar et al.).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig10 regenerates Figure 10 (TRAF-20 speed-ups vs NoP/SortP).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable8 regenerates Table 8 (latency vs input size).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkTable9 regenerates Table 9 (training/inference overheads).
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkTable10 regenerates Table 10 (QO plan exploration).
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }

// BenchmarkTable12 regenerates Table 12 (video cascades, Appendix B).
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }

// BenchmarkTable13 regenerates Table 13 (training-set size sweep).
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }

// BenchmarkFig15 regenerates the Figure 15/16 confidence demonstration.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// --- Primitive micro-benchmarks (Table 2 / Table 5 empirical backing) ---

func randomDense(n, dim int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed)
	xs := make([]mathx.Vec, n)
	ys := make([]bool, n)
	for i := range xs {
		v := make(mathx.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		xs[i] = v
		ys[i] = v[0]+v[1] > 0
	}
	return xs, ys
}

// BenchmarkSVMTrain measures Pegasos training (near-linear in n·d, Table 2).
func BenchmarkSVMTrain(b *testing.B) {
	xs, ys := randomDense(1000, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(xs, ys, svm.Config{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMScore measures O(d) scoring (Table 2 "Testing per input").
func BenchmarkSVMScore(b *testing.B) {
	xs, ys := randomDense(1000, 64, 2)
	m, err := svm.Train(xs, ys, svm.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(xs[i%len(xs)])
	}
}

// BenchmarkKDEScore measures neighbourhood-approximated density scoring
// (O(n′ log n), Table 2).
func BenchmarkKDEScore(b *testing.B) {
	xs, ys := randomDense(2000, 8, 3)
	m, err := kde.Train(xs, ys, kde.Config{Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(xs[i%len(xs)])
	}
}

// BenchmarkDNNScore measures one forward pass (O(params), Table 2).
func BenchmarkDNNScore(b *testing.B) {
	xs, ys := randomDense(500, 96, 5)
	m, err := dnn.Train(xs, ys, dnn.Config{Epochs: 3, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(xs[i%len(xs)])
	}
}

// BenchmarkPPScoreTraffic measures end-to-end PP filtering throughput on
// traffic blobs (the per-row "PP inf." of Table 9).
func BenchmarkPPScoreTraffic(b *testing.B) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 2000, Seed: 7})
	set, err := data.TrafficSet(blobs, query.MustParse("t=SUV"))
	if err != nil {
		b.Fatal(err)
	}
	train, val, _ := set.Split(mathx.NewRNG(8), 0.6, 0.2)
	pp, err := core.Train("t=SUV", train, val, core.TrainConfig{Approach: "Raw+SVM", Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	th := pp.Threshold(0.95)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pp.Score(blobs[i%len(blobs)]) >= th
	}
}

// BenchmarkOptimize measures QO time per query (the paper reports 80-100 ms
// to translate predicates into parametrized PP expressions, §8.2).
func BenchmarkOptimize(b *testing.B) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 1500, Seed: 10})
	corpus := optimizer.NewCorpus()
	for i, clause := range []string{"t=SUV", "t=van", "c=red", "c=white", "s>60", "s<65"} {
		pred := query.MustParse(clause)
		set, err := data.TrafficSet(blobs, pred)
		if err != nil {
			b.Fatal(err)
		}
		train, val, _ := set.Split(mathx.NewRNG(uint64(i)), 0.8, 0.2)
		pp, err := core.Train(clause, train, val, core.TrainConfig{Approach: "Raw+SVM", Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		corpus.Add(pp)
	}
	opt := optimizer.New(corpus)
	pred := query.MustParse("(t=SUV | t=van) & c!=white & s>60 & s<65")
	opts := optimizer.Options{Accuracy: 0.95, UDFCost: 100, Domains: data.TrafficDomains()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(pred, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures engine rows/sec with a PP filter.
func BenchmarkEngineThroughput(b *testing.B) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 2000, Seed: 11})
	pred := query.MustParse("t=SUV")
	var fixture blob.Set
	fixture, err := data.TrafficSet(blobs, pred)
	if err != nil {
		b.Fatal(err)
	}
	train, val, _ := fixture.Split(mathx.NewRNG(12), 0.6, 0.2)
	pp, err := core.Train("t=SUV", train, val, core.TrainConfig{Approach: "Raw+SVM", Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	corpus := NewCorpus()
	corpus.Add(pp)
	dec, err := NewOptimizer(corpus).Optimize(pred, OptimizeOptions{Accuracy: 0.95, UDFCost: 40})
	if err != nil {
		b.Fatal(err)
	}
	procs := []Processor{fakeCostProc{}}
	plan := BuildPlan(blobs, dec, procs, pred)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPlan(plan, ExecConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// fakeCostProc materializes the t column from ground truth at a declared
// cost, standing in for the expensive classifier.
type fakeCostProc struct{}

func (fakeCostProc) Name() string  { return "TypeClassifier" }
func (fakeCostProc) Cost() float64 { return 40 }
func (fakeCostProc) Apply(r Row) ([]Row, error) {
	v, err := data.TrafficValue(r.Blob, "t")
	if err != nil {
		return nil, err
	}
	return []Row{r.With("t", v)}, nil
}

// BenchmarkAblationBudget regenerates the budget-allocation ablation.
func BenchmarkAblationBudget(b *testing.B) { benchExperiment(b, "ablation-budget") }

// BenchmarkAblationOrder regenerates the execution-order ablation.
func BenchmarkAblationOrder(b *testing.B) { benchExperiment(b, "ablation-order") }

// BenchmarkAblationK regenerates the k-bound ablation.
func BenchmarkAblationK(b *testing.B) { benchExperiment(b, "ablation-k") }

// BenchmarkAblationModel regenerates the model-selection ablation.
func BenchmarkAblationModel(b *testing.B) { benchExperiment(b, "ablation-model") }

// BenchmarkCoverage regenerates the ad-hoc predicate coverage experiment.
func BenchmarkCoverage(b *testing.B) { benchExperiment(b, "coverage") }

// BenchmarkTable2 regenerates the empirical complexity-scaling table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable7 regenerates the TRAF-20 workload characterization.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkDrift regenerates the drift/recalibration extension experiment.
func BenchmarkDrift(b *testing.B) { benchExperiment(b, "drift") }
