module probpred

go 1.22
