package online_test

import (
	"testing"

	"probpred/online"
)

// The facade must track internal/online: every breaker state and transition
// the adapt controller and watchdog rely on is reachable through the public
// package, and the re-exported constructor drives the same state machine.
func TestFacadeBreakerAPI(t *testing.T) {
	b := online.NewBreaker(online.BreakerConfig{K: 2, Backoff: 4})
	if b.State() != online.BreakerClosed {
		t.Fatalf("new breaker = %v, want BreakerClosed", b.State())
	}
	if tr := b.Report(false, 0); tr != online.TransitionBreach {
		t.Fatalf("1st fail = %v, want TransitionBreach", tr)
	}
	if tr := b.Report(false, 1); tr != online.TransitionTrip {
		t.Fatalf("2nd fail = %v, want TransitionTrip", tr)
	}
	if b.State() != online.BreakerOpen {
		t.Fatalf("state = %v, want BreakerOpen", b.State())
	}
	b.Probation()
	if b.State() != online.BreakerProbation {
		t.Fatalf("state = %v, want BreakerProbation", b.State())
	}
	if tr := b.Report(true, 2); tr != online.TransitionClose {
		t.Fatalf("probation pass = %v, want TransitionClose", tr)
	}
	if got := online.TransitionNone.String(); got != "none" {
		t.Fatalf("TransitionNone.String() = %q", got)
	}
}

// The watchdog states re-exported earlier must still round-trip through the
// facade alongside the new breaker API (regression for facade drift).
func TestFacadeWatchdogStates(t *testing.T) {
	sys, err := online.New(online.Config{Clauses: []string{"t=SUV"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := sys.Breaker("t=SUV"); st != online.BreakerClosed {
		t.Fatalf("fresh clause breaker = %v, want BreakerClosed", st)
	}
	if st := sys.Breaker("unmanaged"); st != online.BreakerClosed {
		t.Fatalf("unmanaged clause breaker = %v, want BreakerClosed", st)
	}
}
