// Package online exposes the paper's online context (§4, Figure 3b) as
// public API: at cold start queries run unmodified while their UDF outputs
// label raw blobs; once enough labels accumulate, PPs train themselves and
// subsequent decisions inject them; executed runs feed the dependence
// tracking of Appendix A.5.
//
// Typical use:
//
//	sys, _ := online.New(online.Config{Clauses: []string{"t=SUV", "c=red"}})
//	// Per unmodified query run, label blobs from the UDF outputs:
//	for _, row := range results { sys.Observe(row.Blob, row.Lookup) }
//	// Per query, once warm:
//	dec, _ := sys.Decide(pred, 0.95, udfCost)
//	// After executing an injected plan:
//	sys.ReportRun(dec, observedReduction)
package online

import "probpred/internal/online"

// Config shapes the online system: the simple clauses to maintain PPs for,
// label-count thresholds for first training and retraining, the sliding
// buffer size, PP training settings and wrangler domains.
type Config = online.Config

// System manages label collection, (re)training and decisions.
type System = online.System

// New builds an online system for the given simple clauses.
func New(cfg Config) (*System, error) { return online.New(cfg) }
