// Package online exposes the paper's online context (§4, Figure 3b) as
// public API: at cold start queries run unmodified while their UDF outputs
// label raw blobs; once enough labels accumulate, PPs train themselves and
// subsequent decisions inject them; executed runs feed the dependence
// tracking of Appendix A.5.
//
// Typical use:
//
//	sys, _ := online.New(online.Config{Clauses: []string{"t=SUV", "c=red"}})
//	// Per unmodified query run, label blobs from the UDF outputs:
//	for _, row := range results { sys.Observe(row.Blob, row.Lookup) }
//	// Per query, once warm:
//	dec, _ := sys.Decide(pred, 0.95, udfCost)
//	// After executing an injected plan:
//	sys.ReportRun(dec, observedReduction)
//
// An accuracy watchdog guards against silent PP degradation (input drift,
// stale classifiers): report each injected run's realized accuracy and the
// system trips a per-clause circuit breaker after K consecutive misses —
// the PP leaves the corpus, queries fall back to the always-correct
// unmodified plan, and the clause retrains on fresh labels before re-entering
// on probation:
//
//	sys.ReportAccuracy(dec, observedAccuracy, 0.95)
//	if sys.Breaker("t=SUV") == online.BreakerOpen {
//	    // running unmodified; a retrained PP must pass probation first
//	}
package online

import "probpred/internal/online"

// Config shapes the online system: the simple clauses to maintain PPs for,
// label-count thresholds for first training and retraining, the sliding
// buffer size, PP training settings, wrangler domains, and the accuracy
// watchdog.
type Config = online.Config

// WatchdogConfig shapes the per-clause accuracy circuit breaker: K
// consecutive below-target runs trip it, Margin is the tolerated slack, and
// FreshLabels gates retraining after a trip.
type WatchdogConfig = online.WatchdogConfig

// BreakerState is the watchdog's per-clause circuit state.
type BreakerState = online.BreakerState

// Breaker states: closed (serving normally), open (tripped; NoP fallback,
// awaiting retraining) and probation (retrained, one passing run from
// closing).
const (
	BreakerClosed    = online.BreakerClosed
	BreakerOpen      = online.BreakerOpen
	BreakerProbation = online.BreakerProbation
)

// System manages label collection, (re)training, decisions and the
// accuracy watchdog.
type System = online.System

// New builds an online system for the given simple clauses.
func New(cfg Config) (*System, error) { return online.New(cfg) }

// Breaker is the reusable consecutive-failure circuit breaker underlying the
// watchdog (per-clause accuracy) and the adaptive re-optimization controller
// (per-predicate replan guard): K consecutive failures open it, probation
// risks one retry, a probation miss re-opens with doubled, jittered backoff.
type Breaker = online.Breaker

// BreakerConfig shapes one circuit breaker: trip threshold K, initial and
// maximum backoff (in caller-defined ticks) and the deterministic jitter
// seed.
type BreakerConfig = online.BreakerConfig

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return online.NewBreaker(cfg) }

// Transition is what one Breaker.Report did to the breaker's state.
type Transition = online.Transition

// Transitions: none (no change), breach (a failure counted toward K), trip
// (the breaker opened) and close (a probation success closed it).
const (
	TransitionNone   = online.TransitionNone
	TransitionBreach = online.TransitionBreach
	TransitionTrip   = online.TransitionTrip
	TransitionClose  = online.TransitionClose
)
