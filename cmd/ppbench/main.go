// Command ppbench regenerates the paper's evaluation tables and figures
// (§8 and Appendix B) over the synthetic datasets and prints them.
//
// Usage:
//
//	ppbench [-exp all|fig9,table4,...] [-seed N] [-quick]
//	        [-json BENCH_pp.json] [-hotpath BENCH_hotpath.json]
//	        [-serve BENCH_serve.json] [-adaptive BENCH_adaptive.json]
//	        [-stream BENCH_stream.json]
//	        [-latency BENCH_latency.json] [-shard BENCH_shard.json]
//	        [-obs BENCH_obs.json] [-querylog querylog.jsonl]
//	        [-pprof localhost:6060] [-metrics localhost:9090] [-hold]
//
// The experiment ids match DESIGN.md's per-experiment index. Output of a
// full run is recorded in EXPERIMENTS.md next to the paper's numbers.
//
// With -json, every experiment additionally runs under a trace collector and
// a machine-readable report (per-experiment metrics, trace summaries, Go
// runtime metadata) is written to the given path — the perf trajectory file
// CI archives as BENCH_pp.json. With -pprof, a net/http/pprof server runs
// for the duration so long benchmarks can be profiled live. With -metrics,
// the engine runs under a live metrics registry served as Prometheus text on
// http://addr/metrics, alongside /healthz and /debug/pprof/ on the same mux;
// -hold keeps that server up after the experiments finish (for scrapers).
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probpred/internal/bench"
	"probpred/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	seed := flag.Uint64("seed", 42, "experiment seed")
	quick := flag.Bool("quick", false, "use the reduced dataset sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonPath := flag.String("json", "", "also write a machine-readable report (BENCH_pp.json) to this path")
	hotpathPath := flag.String("hotpath", "", "measure the scalar-vs-batch scoring hot path and write BENCH_hotpath.json to this path")
	servePath := flag.String("serve", "", "replay the TRAF20 workload through the serving layer (score cache off vs on) and write BENCH_serve.json to this path")
	adaptivePath := flag.String("adaptive", "", "run a drifted stream with and without mid-query re-optimization and write BENCH_adaptive.json to this path")
	streamPath := flag.String("stream", "", "run streaming ingestion under a mid-run label inversion (watchdog trip/retrain/recovery, backfill-vs-live) and write BENCH_stream.json to this path")
	latencyPath := flag.String("latency", "", "drive the serving layer with an open-loop load generator (rate x concurrency sweep, PP on/off variants) and write BENCH_latency.json to this path")
	shardPath := flag.String("shard", "", "run the sharded scatter-gather determinism checks and throughput sweep and write BENCH_shard.json to this path")
	obsPath := flag.String("obs", "", "replay the TRAF20 workload with tracing + query log on, run the pplog analyzer and write BENCH_obs.json to this path")
	queryLogPath := flag.String("querylog", "", "with -obs: also write the raw JSONL query log to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz and /debug/pprof/ on this address (e.g. localhost:9090) while running")
	hold := flag.Bool("hold", false, "with -metrics or -pprof: keep serving after experiments finish, until interrupted")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "ppbench: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof: http://%s/debug/pprof/\n\n", *pprofAddr)
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	if *metricsAddr != "" {
		reg := metrics.New()
		cfg.Metrics = reg
		metrics.Serve(*metricsAddr, reg, func(err error) {
			fmt.Fprintf(os.Stderr, "ppbench: metrics server: %v\n", err)
		})
		fmt.Printf("metrics: http://%s/metrics\n\n", *metricsAddr)
	}
	if *hotpathPath != "" {
		doc, rep, err := bench.RunHotpath(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: hotpath: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*hotpathPath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: hotpath: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote hot-path report to %s\n", *hotpathPath)
		return
	}
	if *servePath != "" {
		doc, rep, err := bench.RunServe(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*servePath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote serving report to %s\n", *servePath)
		return
	}
	if *adaptivePath != "" {
		doc, rep, err := bench.RunAdaptiveBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: adaptive: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*adaptivePath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: adaptive: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote adaptive report to %s\n", *adaptivePath)
		return
	}
	if *streamPath != "" {
		doc, rep, err := bench.RunStreamBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: stream: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*streamPath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: stream: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote stream report to %s\n", *streamPath)
		return
	}
	if *latencyPath != "" {
		doc, rep, err := bench.RunLatency(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: latency: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*latencyPath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: latency: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote latency report to %s\n", *latencyPath)
		return
	}
	if *shardPath != "" {
		doc, rep, err := bench.RunShard(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: shard: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*shardPath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: shard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote shard report to %s\n", *shardPath)
		return
	}
	if *obsPath != "" {
		doc, rep, err := bench.RunObs(cfg, *queryLogPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: obs: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		f, err := os.Create(*obsPath)
		if err == nil {
			err = doc.Write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: obs: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote observability report to %s\n", *obsPath)
		if *queryLogPath != "" {
			fmt.Printf("wrote query log to %s\n", *queryLogPath)
		}
		return
	}

	ids := bench.Order
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	var doc *bench.JSONDocument
	if *jsonPath != "" {
		doc = bench.NewJSONDocument(*seed, *quick)
	}
	runStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		var rep *bench.Report
		var err error
		if doc != nil {
			var exp bench.JSONExperiment
			rep, exp, err = bench.RunTraced(id, cfg)
			if err == nil {
				doc.Experiments = append(doc.Experiments, exp)
			}
		} else {
			rep, err = bench.Run(id, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep)
		fmt.Printf("(regenerated in %s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if doc != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			os.Exit(1)
		}
		err = doc.Write(f, time.Since(runStart))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote machine-readable report to %s\n", *jsonPath)
	}
	if *hold && (*metricsAddr != "" || *pprofAddr != "") {
		fmt.Println("experiments done; holding diagnostics server open (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}
