// Command ppbench regenerates the paper's evaluation tables and figures
// (§8 and Appendix B) over the synthetic datasets and prints them.
//
// Usage:
//
//	ppbench [-exp all|fig9,table4,...] [-seed N] [-quick]
//
// The experiment ids match DESIGN.md's per-experiment index. Output of a
// full run is recorded in EXPERIMENTS.md next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"probpred/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	seed := flag.Uint64("seed", 42, "experiment seed")
	quick := flag.Bool("quick", false, "use the reduced dataset sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	ids := bench.Order
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	cfg := bench.Config{Seed: *seed, Quick: *quick}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep)
		fmt.Printf("(regenerated in %s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
