// Command pptrain trains a probabilistic predicate for one clause on a
// chosen synthetic dataset and prints its accuracy-versus-reduction curve —
// a window into §5's construction machinery, including model selection.
//
// Usage:
//
//	pptrain [-dataset traffic|lshtc|coco|imagenet|sun|ucf101]
//	        [-clause "t=SUV" | -category 3]
//	        [-approach ""|Raw+SVM|PCA+KDE|FH+SVM|DNN] [-seed N] [-trace]
//	        [-metrics addr]
//
// For the traffic dataset, -clause takes a predicate clause; for the
// categorical datasets, -category selects the "has category K" query. An
// empty -approach invokes automatic model selection (§5.5). -trace emits a
// training span (approach, wall time, training-set size) to stderr.
// -metrics serves per-approach training counters and wall-time histograms as
// Prometheus text on http://addr/metrics while the process runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/query"
)

func main() {
	dataset := flag.String("dataset", "traffic", "dataset: traffic|lshtc|coco|imagenet|sun|ucf101")
	clause := flag.String("clause", "t=SUV", "clause for the traffic dataset")
	category := flag.Int("category", 0, "category index for categorical datasets")
	approach := flag.String("approach", "", "PP approach; empty = model selection")
	seed := flag.Uint64("seed", 42, "seed")
	saveTo := flag.String("save", "", "save the trained PP to this file (gob)")
	trace := flag.Bool("trace", false, "emit a training span to stderr")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz and /debug/pprof/ on this address (e.g. :9090)")
	flag.Parse()

	if err := run(*dataset, *clause, *category, *approach, *seed, *saveTo, *trace, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "pptrain:", err)
		os.Exit(1)
	}
}

func run(dataset, clause string, category int, approach string, seed uint64, saveTo string, trace bool, metricsAddr string) error {
	set, name, err := loadSet(dataset, clause, category, seed)
	if err != nil {
		return err
	}
	rng := mathx.NewRNG(seed ^ 0x7141)
	train, val, test := set.Split(rng, 0.6, 0.2)
	fmt.Printf("dataset=%s clause=%q  blobs=%d dim=%d sparse=%v selectivity=%.3f\n",
		dataset, name, set.Len(), set.Dim(), set.AnySparse(), set.Selectivity())

	var tracer *obs.Tracer
	if trace {
		tracer = obs.New(obs.NewTextSink(os.Stderr))
	}
	var reg *metrics.Registry
	if metricsAddr != "" {
		reg = metrics.New()
		metrics.Serve(metricsAddr, reg, func(err error) {
			fmt.Fprintln(os.Stderr, "pptrain: metrics server:", err)
		})
		fmt.Printf("metrics: http://%s/metrics\n", metricsAddr)
	}
	cfg := core.TrainConfig{Approach: approach, Seed: seed, AllowDNN: true, Metrics: reg}
	sp := tracer.Begin(obs.KindTrain, name)
	sp.RowsIn = train.Len()
	pp, err := core.Train(name, train, val, cfg)
	if err != nil {
		sp.SetAttr("error", err.Error())
		tracer.End(&sp)
		return err
	}
	sp.SetAttr("approach", pp.Approach)
	sp.CostVMS = pp.Cost() * float64(pp.TrainN)
	tracer.End(&sp)
	fmt.Printf("trained %s in %s on %d blobs (cost %.2f vms/blob)\n\n",
		pp.Approach, pp.TrainDuration.Round(1e6), pp.TrainN, pp.Cost())

	fmt.Printf("%-10s %12s %12s %12s %12s\n", "target a", "threshold", "est r(a]", "test r", "test acc")
	for _, a := range []float64{1.0, 0.99, 0.95, 0.9, 0.8} {
		m := core.Evaluate(pp, test, a)
		fmt.Printf("%-10.2f %12.4f %12.3f %12.3f %12.3f\n",
			a, pp.Threshold(a), pp.Reduction(a), m.Reduction, m.Accuracy)
	}
	if saveTo != "" {
		f, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pp.Save(f); err != nil {
			return err
		}
		fmt.Printf("\nsaved PP to %s\n", saveTo)
	}
	return nil
}

func loadSet(dataset, clause string, category int, seed uint64) (blob.Set, string, error) {
	switch dataset {
	case "traffic":
		pred, err := query.Parse(clause)
		if err != nil {
			return blob.Set{}, "", err
		}
		blobs := data.Traffic(data.TrafficConfig{Rows: 6000, Seed: seed})
		set, err := data.TrafficSet(blobs, pred)
		return set, clause, err
	case "lshtc":
		d := data.LSHTC(data.LSHTCConfig{Seed: seed})
		return categorySet(d, category)
	case "coco":
		return categorySet(data.COCO(seed), category)
	case "imagenet":
		return categorySet(data.ImageNet(seed), category)
	case "sun":
		return categorySet(data.SUNAttribute(seed), category)
	case "ucf101":
		return categorySet(data.UCF101(data.UCFConfig{Seed: seed}), category)
	}
	return blob.Set{}, "", fmt.Errorf("unknown dataset %q", dataset)
}

func categorySet(d *data.Categorical, category int) (blob.Set, string, error) {
	if category < 0 || category >= d.NumCategories() {
		return blob.Set{}, "", fmt.Errorf("category %d outside [0,%d)", category, d.NumCategories())
	}
	return d.SetFor(category), fmt.Sprintf("%s.cat=%d", d.Name, category), nil
}
