// Command ppquery runs an ad-hoc predicate over the synthetic traffic
// surveillance stream with and without probabilistic predicates and reports
// cluster time, latency, speed-up and accuracy — a small interactive version
// of the §8.2 experiments.
//
// Usage:
//
//	ppquery [-pred "t=SUV & c=red"] [-accuracy 0.95] [-rows 20000] [-seed N] [-explain]
//	        [-trace]
//
// -trace streams the observability layer's records to stderr: one span per
// engine run and per operator (wall-clock + virtual cost + cardinalities)
// and the optimizer's plan-search span with its counters.
package main

import (
	"flag"
	"fmt"
	"os"

	"probpred/internal/bench"
	"probpred/internal/engine"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

func main() {
	predStr := flag.String("pred", "t=SUV & c=red", "query predicate over columns t,c,s,i,o")
	accuracy := flag.Float64("accuracy", 0.95, "query-wide accuracy target in (0,1]")
	rows := flag.Int("rows", 20000, "test stream size")
	seed := flag.Uint64("seed", 42, "stream + training seed")
	explain := flag.Bool("explain", false, "print candidate PP expressions and the plan profile")
	corpusFile := flag.String("corpus", "", "load the PP corpus from this file if it exists; otherwise train and save it")
	trace := flag.Bool("trace", false, "stream execution + optimizer spans to stderr")
	flag.Parse()

	if err := run(*predStr, *accuracy, *rows, *seed, *explain, *corpusFile, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "ppquery:", err)
		os.Exit(1)
	}
}

func run(predStr string, accuracy float64, rows int, seed uint64, explain bool, corpusFile string, trace bool) error {
	pred, err := query.Parse(predStr)
	if err != nil {
		return err
	}
	fmt.Printf("predicate: %s  (accuracy target %.2f)\n", pred, accuracy)
	var tracer *obs.Tracer
	if trace {
		tracer = obs.New(obs.NewTextSink(os.Stderr))
	}
	cfg := bench.Config{Seed: seed, Quick: rows <= 5000, Obs: tracer}
	h, err := loadOrTrainHarness(cfg, corpusFile)
	if err != nil {
		return err
	}
	if rows < len(h.TestBlobs) {
		h.TestBlobs = h.TestBlobs[:rows]
	}
	fmt.Printf("corpus: %d PPs trained in %s; stream: %d rows\n\n",
		h.Opt.Corpus().Size(), h.CorpusTrainTime.Round(1e6), len(h.TestBlobs))

	nopPlan, u, err := h.NoPPlan(pred)
	if err != nil {
		return err
	}
	nop, err := engine.Run(nopPlan, engine.Config{Obs: tracer})
	if err != nil {
		return err
	}
	ppPlan, dec, err := h.PPPlan(pred, accuracy)
	if err != nil {
		return err
	}
	pp, err := engine.Run(ppPlan, engine.Config{Obs: tracer})
	if err != nil {
		return err
	}

	fmt.Printf("optimizer: %d candidate PP expressions, UDF cost u=%.0f vms/row\n", dec.NumCandidates, u)
	if dec.Inject {
		fmt.Printf("picked:    %s\n", dec.Expr)
		fmt.Printf("           est. reduction %.2f, PP cost %.2f vms/row, allocations: %s\n",
			dec.Reduction, dec.Cost, dec.LeafAccuracies)
	} else {
		fmt.Println("picked:    none — running the query as-is is cheapest")
	}
	if explain {
		for _, alt := range dec.Alternatives {
			fmt.Printf("  candidate: %-60s est r=%.2f plan=%.1f\n", alt.Expr, alt.Reduction, alt.PlanCost)
		}
	}

	kept := map[int]bool{}
	for _, r := range pp.Rows {
		kept[r.Blob.ID] = true
	}
	retained := 0
	for _, r := range nop.Rows {
		if kept[r.Blob.ID] {
			retained++
		}
	}
	acc := 1.0
	if len(nop.Rows) > 0 {
		acc = float64(retained) / float64(len(nop.Rows))
	}
	if explain {
		fmt.Println()
		fmt.Println("PP plan profile:")
		fmt.Println(pp.Summary(ppPlan))
	}
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %8s\n", "plan", "cluster (vms)", "latency (vms)", "rows")
	fmt.Printf("%-8s %14.0f %14.0f %8d\n", "NoP", nop.ClusterTime, nop.Latency, len(nop.Rows))
	fmt.Printf("%-8s %14.0f %14.0f %8d\n", "PP", pp.ClusterTime, pp.Latency, len(pp.Rows))
	fmt.Printf("\nspeed-up: %.2fx cluster time, %.2fx latency; accuracy: %.3f\n",
		nop.ClusterTime/pp.ClusterTime, nop.Latency/pp.Latency, acc)
	return nil
}

// loadOrTrainHarness builds the harness, reusing a previously saved corpus
// when corpusFile exists (train once, query forever).
func loadOrTrainHarness(cfg bench.Config, corpusFile string) (*bench.TrafficHarness, error) {
	if corpusFile != "" {
		if f, err := os.Open(corpusFile); err == nil {
			defer f.Close()
			corpus, err := optimizer.LoadCorpus(f)
			if err != nil {
				return nil, err
			}
			fmt.Printf("loaded %d-PP corpus from %s\n", corpus.Size(), corpusFile)
			h, err := bench.NewTrafficHarnessWithCorpus(cfg, corpus)
			if err != nil {
				return nil, err
			}
			return h, nil
		}
	}
	fmt.Println("training 32-PP corpus on the stream prefix...")
	h, err := bench.NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	if corpusFile != "" {
		f, err := os.Create(corpusFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := h.Opt.Corpus().Save(f); err != nil {
			return nil, err
		}
		fmt.Printf("saved corpus to %s\n", corpusFile)
	}
	return h, nil
}
