// Command ppquery runs an ad-hoc predicate over the synthetic traffic
// surveillance stream with and without probabilistic predicates and reports
// cluster time, latency, speed-up and accuracy — a small interactive version
// of the §8.2 experiments.
//
// Usage:
//
//	ppquery [-pred "t=SUV & c=red"] [-accuracy 0.95] [-rows 20000] [-seed N] [-explain]
//	        [-trace] [-metrics addr] [-metrics-dump file.json]
//	        [-querylog file.jsonl] [-flight-triggers default|none|run-errors,event,...]
//
// -explain prints the candidate PP expressions and an EXPLAIN ANALYZE tree
// for the executed PP plan: per-operator estimated vs actual rows, virtual
// cost, wall time, PP pass rates, and MISESTIMATE flags where the actuals
// fell outside tolerance.
//
// -trace streams the observability layer's records to stderr: one span per
// engine run and per operator (wall-clock + virtual cost + cardinalities)
// and the optimizer's plan-search span with its counters. Independent of
// -trace, a flight recorder buffers the most recent records and dumps them
// to stderr automatically if a run fails.
//
// -metrics serves Prometheus text on http://addr/metrics (plus /healthz and
// /debug/pprof/) for the duration of the process; -metrics-dump writes a
// one-shot JSON snapshot of every instrument when the query finishes.
//
// Every invocation runs under one trace ID (printed alongside the predicate);
// all spans the run emits share it. -querylog appends a structured pplog
// record for the PP run to the given JSONL file. -flight-triggers overrides
// which records auto-dump the flight recorder: "default" keeps the built-in
// set (failed runs, watchdog.trip, adapt.swap, shard.fail), "none" disables
// auto-dumping, and a comma-separated list names event triggers directly,
// with the special token "run-errors" standing for failed run spans.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"probpred/internal/bench"
	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/pplog"
	"probpred/internal/query"
)

type options struct {
	predStr       string
	accuracy      float64
	rows          int
	seed          uint64
	explain       bool
	corpusFile    string
	trace         bool
	metricsAddr   string
	metricsDump   string
	queryLog      string
	flightTrigger string
}

func main() {
	var o options
	flag.StringVar(&o.predStr, "pred", "t=SUV & c=red", "query predicate over columns t,c,s,i,o")
	flag.Float64Var(&o.accuracy, "accuracy", 0.95, "query-wide accuracy target in (0,1]")
	flag.IntVar(&o.rows, "rows", 20000, "test stream size")
	flag.Uint64Var(&o.seed, "seed", 42, "stream + training seed")
	flag.BoolVar(&o.explain, "explain", false, "print candidate PP expressions and the EXPLAIN ANALYZE tree")
	flag.StringVar(&o.corpusFile, "corpus", "", "load the PP corpus from this file if it exists; otherwise train and save it")
	flag.BoolVar(&o.trace, "trace", false, "stream execution + optimizer spans to stderr")
	flag.StringVar(&o.metricsAddr, "metrics", "", "serve /metrics, /healthz and /debug/pprof/ on this address (e.g. :9090)")
	flag.StringVar(&o.metricsDump, "metrics-dump", "", "write a JSON metrics snapshot to this file at exit")
	flag.StringVar(&o.queryLog, "querylog", "", "append a structured pplog record for the PP run to this JSONL file")
	flag.StringVar(&o.flightTrigger, "flight-triggers", "default", "flight-recorder auto-dump triggers: 'default', 'none', or comma-separated event names ('run-errors' = failed run spans)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ppquery:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	pred, err := query.Parse(o.predStr)
	if err != nil {
		return err
	}
	tctx := obs.TraceContext{TraceID: obs.NewTraceID()}
	fmt.Printf("predicate: %s  (accuracy target %.2f, trace %s)\n", pred, o.accuracy, tctx.TraceID)

	// The flight recorder rides along unconditionally: it buffers the most
	// recent spans/events and dumps them to stderr when a trigger fires
	// (-flight-triggers picks the trigger set; the default is a failed run).
	recorder := obs.NewFlightRecorder(256, os.Stderr)
	trigger, err := parseTriggers(o.flightTrigger)
	if err != nil {
		return err
	}
	recorder.SetTrigger(trigger)
	sinks := []obs.Sink{recorder}
	if o.trace {
		sinks = append(sinks, obs.NewTextSink(os.Stderr))
	}
	tracer := obs.New(obs.Multi(sinks...))

	reg := metrics.New()
	if o.metricsAddr != "" {
		metrics.Serve(o.metricsAddr, reg, func(err error) {
			fmt.Fprintln(os.Stderr, "ppquery: metrics server:", err)
		})
		fmt.Printf("metrics: serving http://%s/metrics\n", o.metricsAddr)
	}

	cfg := bench.Config{Seed: o.seed, Quick: o.rows <= 5000, Obs: tracer, Metrics: reg}
	h, err := loadOrTrainHarness(cfg, o.corpusFile)
	if err != nil {
		return err
	}
	h.Opt.SetMetrics(reg)
	h.Opt.SetObs(tracer)
	if o.rows < len(h.TestBlobs) {
		h.TestBlobs = h.TestBlobs[:o.rows]
	}
	fmt.Printf("corpus: %d PPs trained in %s; stream: %d rows\n\n",
		h.Opt.Corpus().Size(), h.CorpusTrainTime.Round(1e6), len(h.TestBlobs))

	execCfg := engine.Config{Obs: tracer, Metrics: reg, Trace: tctx}
	nopPlan, u, err := h.NoPPlan(pred)
	if err != nil {
		return err
	}
	nop, err := engine.Run(nopPlan, execCfg)
	if err != nil {
		return err
	}
	ppPlan, dec, err := h.PPPlan(pred, o.accuracy)
	if err != nil {
		return err
	}
	dec.Filter.Instrument(reg)
	ppStart := time.Now()
	pp, err := engine.Run(ppPlan, execCfg)
	if err != nil {
		return err
	}
	ppWall := time.Since(ppStart)

	fmt.Printf("optimizer: %d candidate PP expressions, UDF cost u=%.0f vms/row\n", dec.NumCandidates, u)
	if dec.Inject {
		fmt.Printf("picked:    %s\n", dec.Expr)
		fmt.Printf("           est. reduction %.2f, PP cost %.2f vms/row, allocations: %s\n",
			dec.Reduction, dec.Cost, dec.LeafAccuracies)
	} else {
		fmt.Println("picked:    none — running the query as-is is cheapest")
	}
	if o.explain {
		for _, alt := range dec.Alternatives {
			fmt.Printf("  candidate: %-60s est r=%.2f plan=%.1f\n", alt.Expr, alt.Reduction, alt.PlanCost)
		}
	}

	// Feed the observed reduction back to the optimizer (A.5 drift loop),
	// under this invocation's trace.
	for _, op := range pp.PerOp {
		if op.PPFilter && op.RowsIn > 0 {
			h.Opt.ObserveRuntimeCtx(dec, 1-float64(op.RowsOut)/float64(op.RowsIn), tctx)
		}
	}

	kept := map[int]bool{}
	for _, r := range pp.Rows {
		kept[r.Blob.ID] = true
	}
	retained := 0
	for _, r := range nop.Rows {
		if kept[r.Blob.ID] {
			retained++
		}
	}
	acc := 1.0
	if len(nop.Rows) > 0 {
		acc = float64(retained) / float64(len(nop.Rows))
	}
	if o.explain {
		est, eerr := estimateRows(h, ppPlan, dec, pred)
		if eerr != nil {
			return eerr
		}
		fmt.Println()
		fmt.Println("PP plan:")
		fmt.Println(pp.Analyze(engine.AnalyzeOptions{EstimatedRows: est}))
	}
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %8s\n", "plan", "cluster (vms)", "latency (vms)", "rows")
	fmt.Printf("%-8s %14.0f %14.0f %8d\n", "NoP", nop.ClusterTime, nop.Latency, len(nop.Rows))
	fmt.Printf("%-8s %14.0f %14.0f %8d\n", "PP", pp.ClusterTime, pp.Latency, len(pp.Rows))
	fmt.Printf("\nspeed-up: %.2fx cluster time, %.2fx latency; accuracy: %.3f\n",
		nop.ClusterTime/pp.ClusterTime, nop.Latency/pp.Latency, acc)

	if o.metricsDump != "" {
		f, err := os.Create(o.metricsDump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", o.metricsDump)
	}
	if o.queryLog != "" {
		rec := pplog.Record{
			TimeUnixNS: time.Now().UnixNano(),
			TraceID:    tctx.TraceID,
			Session:    "ppquery",
			PlanKey:    optimizer.PlanKey(pred, o.accuracy),
			Accuracy:   o.accuracy,
			ServiceNS:  ppWall.Nanoseconds(),
			Rows:       len(pp.Rows),
			ClusterVMS: pp.ClusterTime,
		}
		for _, op := range pp.PerOp {
			if op.PPFilter {
				rec.PPTested += op.RowsIn
				rec.PPPassed += op.RowsOut
			}
		}
		if rec.PPTested > 0 {
			rec.ObsReduction = 1 - float64(rec.PPPassed)/float64(rec.PPTested)
		}
		if dec.Inject {
			rec.EstReduction = dec.Reduction
		}
		if err := appendQueryLog(o.queryLog, rec, reg); err != nil {
			return err
		}
		fmt.Printf("query-log record appended to %s\n", o.queryLog)
	}
	return nil
}

// appendQueryLog appends one record to the JSONL query log at path through a
// pplog.Writer (same format as the serving layer's log).
func appendQueryLog(path string, rec pplog.Record, reg *metrics.Registry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := pplog.NewWriter(f, 1, reg)
	w.Log(rec)
	err = w.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseTriggers compiles the -flight-triggers flag into an auto-dump
// predicate: "default" selects obs.DefaultTriggerSpec, "none" disables
// auto-dumping, anything else is a comma-separated list of event names with
// "run-errors" standing for failed run spans.
func parseTriggers(s string) (func(obs.Record) bool, error) {
	switch strings.TrimSpace(s) {
	case "", "default":
		return obs.DefaultTrigger, nil
	case "none":
		return nil, nil
	}
	var spec obs.TriggerSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
			continue
		case tok == "run-errors":
			spec.FailedRunSpans = true
		default:
			spec.Events = append(spec.Events, tok)
		}
	}
	if !spec.FailedRunSpans && len(spec.Events) == 0 {
		return nil, fmt.Errorf("-flight-triggers %q names no triggers (use 'none' to disable)", s)
	}
	return spec.Trigger(), nil
}

// estimateRows builds the planner's estimated output cardinality for each
// operator of the PP plan: the scan emits the whole stream, an injected PP
// filter keeps (1−reduction) of it, UDF processors pass rows through, and
// the final σ keeps the predicate's training-prefix selectivity share of the
// stream. Unknown operator types carry the running estimate forward.
func estimateRows(h *bench.TrafficHarness, p engine.Plan, dec *optimizer.Decision, pred query.Pred) ([]float64, error) {
	sel, err := h.Selectivity(pred)
	if err != nil {
		return nil, err
	}
	n := float64(len(h.TestBlobs))
	cur := n
	est := make([]float64, 0, len(p.Ops))
	for _, op := range p.Ops {
		switch op.(type) {
		case *engine.Scan:
			cur = n
		case *engine.PPFilter:
			cur *= 1 - dec.Reduction
		case *engine.Select:
			// Selectivity is measured over the full stream; the σ's output
			// cannot exceed what reached it.
			if s := n * sel; s < cur {
				cur = s
			}
		}
		est = append(est, cur)
	}
	return est, nil
}

// loadOrTrainHarness builds the harness, reusing a previously saved corpus
// when corpusFile exists (train once, query forever).
func loadOrTrainHarness(cfg bench.Config, corpusFile string) (*bench.TrafficHarness, error) {
	if corpusFile != "" {
		if f, err := os.Open(corpusFile); err == nil {
			defer f.Close()
			corpus, err := optimizer.LoadCorpus(f)
			if err != nil {
				return nil, err
			}
			fmt.Printf("loaded %d-PP corpus from %s\n", corpus.Size(), corpusFile)
			h, err := bench.NewTrafficHarnessWithCorpus(cfg, corpus)
			if err != nil {
				return nil, err
			}
			return h, nil
		}
	}
	fmt.Println("training 32-PP corpus on the stream prefix...")
	h, err := bench.NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	if corpusFile != "" {
		f, err := os.Create(corpusFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := h.Opt.Corpus().Save(f); err != nil {
			return nil, err
		}
		fmt.Printf("saved corpus to %s\n", corpusFile)
	}
	return h, nil
}
