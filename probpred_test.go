package probpred

import (
	"bytes"
	"strings"
	"testing"

	"probpred/internal/data"
	"probpred/internal/dimred"
	"probpred/internal/query"
)

// TestPublicAPIWorkflow drives the full documented workflow through the
// facade: generate data, train PPs per clause, optimize a complex predicate,
// run the query with and without the PP filter, compare cost and output.
func TestPublicAPIWorkflow(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 3000, Seed: 1})
	corpus := NewCorpus()
	for i, clause := range []string{"t=SUV", "t=van", "c=red", "c=white"} {
		pred, err := ParsePredicate(clause)
		if err != nil {
			t.Fatal(err)
		}
		set, err := data.TrafficSet(blobs[:1500], pred)
		if err != nil {
			t.Fatal(err)
		}
		train, val, _ := set.Split(NewRNG(uint64(i)+10), 0.8, 0.2)
		pp, err := TrainPP(clause, train, val, TrainConfig{Approach: "Raw+SVM", Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		corpus.Add(pp)
	}
	opt := NewOptimizer(corpus)
	pred, err := ParsePredicate("(t=SUV | t=van) & c=red")
	if err != nil {
		t.Fatal(err)
	}
	procs := []Processor{fakeCostProc{}, fakeColorProc{}}
	u := 0.0
	for _, p := range procs {
		u += p.Cost()
	}
	dec, err := opt.Optimize(pred, OptimizeOptions{Accuracy: 0.95, UDFCost: u,
		Domains: data.TrafficDomains()})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatalf("expected injection; candidates=%d", dec.NumCandidates)
	}
	test := blobs[1500:]
	withPP, err := RunPlan(BuildPlan(test, dec, procs, pred), ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	noPP, err := RunPlan(BuildPlan(test, nil, procs, pred), ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if withPP.ClusterTime >= noPP.ClusterTime {
		t.Fatalf("PP did not save cluster time: %v vs %v", withPP.ClusterTime, noPP.ClusterTime)
	}
	if len(noPP.Rows) == 0 {
		t.Fatal("query returned nothing")
	}
	retained := float64(len(withPP.Rows)) / float64(len(noPP.Rows))
	if retained < 0.85 {
		t.Fatalf("retained only %v of output at a=0.95", retained)
	}
}

// fakeColorProc materializes the c column at a declared cost.
type fakeColorProc struct{}

func (fakeColorProc) Name() string  { return "ColorClassifier" }
func (fakeColorProc) Cost() float64 { return 30 }
func (fakeColorProc) Apply(r Row) ([]Row, error) {
	v, err := data.TrafficValue(r.Blob, "c")
	if err != nil {
		return nil, err
	}
	return []Row{r.With("c", v)}, nil
}

func TestNewPPCustomScorer(t *testing.T) {
	// Any real-valued function can back a PP (§5.3): here, a hand-written
	// rule over the first feature.
	var val Set
	rng := NewRNG(2)
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64()
		val.Append(FromDense(i, Vec{x}), x > 0.5)
	}
	pp, err := NewPP("x>0.5", "custom", firstDimScorer{}, val)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Reduction(1) <= 0 {
		t.Fatalf("custom PP reduction = %v", pp.Reduction(1))
	}
	m := EvaluatePP(pp, val, 1)
	if m.Accuracy != 1 {
		t.Fatalf("validation accuracy at a=1 is %v", m.Accuracy)
	}
}

type firstDimScorer struct{}

func (firstDimScorer) Score(x Vec) float64 { return x[0] }
func (firstDimScorer) Name() string        { return "rule" }
func (firstDimScorer) Cost() float64       { return 0.1 }

func TestParsePredicateErrors(t *testing.T) {
	if _, err := ParsePredicate("t="); err == nil {
		t.Fatal("expected parse error")
	}
	p, err := ParsePredicate("t in {SUV, van}")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "t=SUV") {
		t.Fatalf("in-set desugaring missing: %s", p)
	}
}

func TestBuildPlanWithoutDecision(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 10, Seed: 3})
	pred := query.MustParse("t=SUV")
	plan := BuildPlan(blobs, nil, []Processor{fakeCostProc{}}, pred)
	res, err := RunPlan(plan, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 1 {
		t.Fatalf("stages = %d", res.Stages)
	}
}

func TestFacadePersistenceRoundTrip(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 1500, Seed: 20})
	pred, err := ParsePredicate("t=van")
	if err != nil {
		t.Fatal(err)
	}
	set, err := data.TrafficSet(blobs, pred)
	if err != nil {
		t.Fatal(err)
	}
	train, val, _ := set.Split(NewRNG(21), 0.7, 0.3)
	pp, err := TrainPP("t=van", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Score(blobs[0]) != pp.Score(blobs[0]) {
		t.Fatal("score changed across save/load")
	}
	// Corpus round trip through the facade.
	corpus := NewCorpus()
	corpus.Add(pp)
	var cbuf bytes.Buffer
	if err := corpus.Save(&cbuf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadCorpus(&cbuf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Size() != 1 {
		t.Fatalf("corpus size = %d", reloaded.Size())
	}
	dec, err := NewOptimizer(reloaded).Optimize(pred, OptimizeOptions{Accuracy: 0.95, UDFCost: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("reloaded corpus should still drive injection")
	}
}

func TestNewPPWithReducerFacade(t *testing.T) {
	var val Set
	rng := NewRNG(23)
	for i := 0; i < 300; i++ {
		v := Vec{rng.NormFloat64() * 5, rng.NormFloat64()}
		val.Append(FromDense(i, v), v[0] > 3)
	}
	pca, err := dimred.FitPCA(val.Blobs, 1, NewRNG(24))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewPPWithReducer("x0>3", "custom", pca, pcaSignScorer{}, val)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluatePP(pp, val, 0.95)
	if m.Accuracy < 0.9 || m.Reduction < 0.3 {
		t.Fatalf("custom-reducer PP weak: %+v", m)
	}
}

type pcaSignScorer struct{}

func (pcaSignScorer) Score(x Vec) float64 {
	// The dominant PC is ±x0; sign-agnostic magnitude works either way
	// because positives sit far out on it.
	if x[0] < 0 {
		return -x[0]
	}
	return x[0]
}
func (pcaSignScorer) Name() string  { return "pcsign" }
func (pcaSignScorer) Cost() float64 { return 0.1 }

// facadeBuilder implements QueryBuilder over the traffic test blobs with the
// fake classifier UDFs — the README's serving example, end to end.
type facadeBuilder struct{ blobs []Blob }

func (b facadeBuilder) UDFCost(pred Pred) (float64, error) {
	return fakeCostProc{}.Cost() + fakeColorProc{}.Cost(), nil
}

func (b facadeBuilder) Build(pred Pred, filter BlobFilter) (Plan, error) {
	ops := []PlanOperator{&ScanOp{Blobs: b.blobs}}
	if filter != nil {
		ops = append(ops, &PPFilterOp{F: filter})
	}
	ops = append(ops, &ProcessOp{P: fakeCostProc{}}, &ProcessOp{P: fakeColorProc{}},
		&SelectOp{Pred: pred})
	return Plan{Ops: ops}, nil
}

// TestFacadeServing drives the serving layer through the facade: overlapping
// and respelled queries share one cached plan, and results match a direct
// RunPlan of the same predicate.
func TestFacadeServing(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 3000, Seed: 40})
	corpus := NewCorpus()
	for i, clause := range []string{"t=SUV", "c=red"} {
		pred := query.MustParse(clause)
		set, err := data.TrafficSet(blobs[:1500], pred)
		if err != nil {
			t.Fatal(err)
		}
		train, val, _ := set.Split(NewRNG(uint64(i)+41), 0.8, 0.2)
		pp, err := TrainPP(clause, train, val, TrainConfig{Approach: "Raw+SVM", Seed: uint64(i) + 41})
		if err != nil {
			t.Fatal(err)
		}
		corpus.Add(pp)
	}
	srv, err := NewServer(ServeConfig{
		Optimizer: NewOptimizer(corpus),
		Builder:   facadeBuilder{blobs: blobs[1500:]},
		Accuracy:  0.95,
		Domains:   data.TrafficDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resps, err := srv.Replay([]WorkloadQuery{
		{ID: "Q1", Pred: "t=SUV & c=red"},
		{ID: "Q2", Pred: "c=red & t=SUV"}, // respelling: must hit Q1's plan
		{ID: "Q3", Pred: "t=SUV"},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].PlanKey != resps[1].PlanKey {
		t.Fatalf("respelled query missed the plan cache: %q vs %q",
			resps[0].PlanKey, resps[1].PlanKey)
	}
	st := srv.Stats()
	if st.Sessions != 3 || st.PlanHits+st.PlanMisses != 3 || st.PlanHits < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(resps[0].Result.Rows) != len(resps[1].Result.Rows) {
		t.Fatalf("respelled query returned %d rows, original %d",
			len(resps[1].Result.Rows), len(resps[0].Result.Rows))
	}
	// Served result equals a direct facade run of the same decision.
	pred := query.MustParse("t=SUV & c=red")
	direct, err := RunPlan(BuildPlan(blobs[1500:], resps[0].Decision,
		[]Processor{fakeCostProc{}, fakeColorProc{}}, pred), ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(resps[0].Result.Rows) ||
		direct.ClusterTime != resps[0].Result.ClusterTime {
		t.Fatalf("served result diverged from direct run: %d rows / %v vs %d rows / %v",
			len(resps[0].Result.Rows), resps[0].Result.ClusterTime,
			len(direct.Rows), direct.ClusterTime)
	}
}

func TestExplainPlanFacade(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 5, Seed: 30})
	pred := query.MustParse("t=SUV")
	plan := BuildPlan(blobs, nil, []Processor{fakeCostProc{}}, pred)
	out := ExplainPlan(plan)
	if !strings.Contains(out, "Scan") || !strings.Contains(out, "TypeClassifier") {
		t.Fatalf("ExplainPlan = %q", out)
	}
	if !strings.Contains(out, "stage 1:") {
		t.Fatalf("missing stage marker: %q", out)
	}
}
