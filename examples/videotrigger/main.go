// Video trigger: the live-trigger scenario of §2 over an Appendix-B style
// surveillance stream. A user registers a trigger ("object in view") on a
// mostly-empty camera feed; a PP trained on the first portion of the stream
// filters frames so the very expensive reference detector only sees
// plausible candidates.
//
//	go run ./examples/videotrigger
package main

import (
	"fmt"
	"log"
	"sort"

	probpred "probpred"
	"probpred/datasets"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stream := datasets.Coral(datasets.CoralConfig{Frames: 20000, Seed: 31})
	raw := datasets.SetFromStream(stream)
	fmt.Printf("stream: %d frames (%dx%d), %.2f%% contain the trigger object\n\n",
		raw.Len(), stream.Width, stream.Height, 100*raw.Selectivity())

	// Preprocess frames the way the Appendix-B pipeline does (Figure 13):
	// subtract the empty-footage background, mask out the irrelevant
	// shimmering region, and sort the deviations descending. The sorted
	// order statistics are translation-invariant — an object is "several
	// pixels deviating strongly", wherever it appears — so the PP
	// generalizes to object positions never seen in training.
	set := probpred.Set{Labels: raw.Labels}
	for _, frame := range raw.Blobs {
		set.Blobs = append(set.Blobs, probpred.FromDense(frame.ID, maskedDiff(stream, frame)))
	}

	// Cold start (§4, online context): the first part of the stream runs
	// through the reference detector and yields labeled frames; once enough
	// are available the PP is trained and takes over.
	trainSet := probpred.Set{Blobs: set.Blobs[:6000], Labels: set.Labels[:6000]}
	train, val, _ := trainSet.Split(probpred.NewRNG(1), 0.8, 0.2)
	// A linear SVM on the masked difference image mirrors the Appendix-B
	// early filter; positives are rare, so up-weight them.
	cfg := probpred.TrainConfig{Approach: "Raw+SVM", Seed: 2}
	cfg.SVM.ClassWeightPos = 8
	pp, err := probpred.TrainPP("object=1", train, val, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained %s on the labeled prefix\n\n", pp)

	detector := datasets.FrameDetectorUDF(500) // 500 vms per frame
	const accuracy = 0.99

	// Live phase: PP gates the detector frame by frame.
	live := probpred.Set{Blobs: set.Blobs[6000:], Labels: set.Labels[6000:]}
	var sentToDetector, triggered, truePositives, positives int
	costWithPP := 0.0
	for i, frame := range live.Blobs {
		costWithPP += pp.Cost()
		truth := live.Labels[i]
		if truth {
			positives++
		}
		if !pp.Pass(frame, accuracy) {
			continue
		}
		sentToDetector++
		costWithPP += detector.Cost()
		// The reference detector confirms (it reads ground truth).
		if truth {
			triggered++
			truePositives++
		}
	}
	costNoPP := float64(live.Len()) * detector.Cost()
	recall := 1.0
	if positives > 0 {
		recall = float64(truePositives) / float64(positives)
	}
	fmt.Printf("live frames: %d; sent to detector: %d (%.1f%% filtered)\n",
		live.Len(), sentToDetector,
		100*(1-float64(sentToDetector)/float64(live.Len())))
	fmt.Printf("triggers fired: %d, recall %.3f at target accuracy %.2f\n", triggered, recall, accuracy)
	fmt.Printf("detector cost: %.0f -> %.0f virtual ms (%.1fx cheaper)\n",
		costNoPP, costWithPP, costNoPP/costWithPP)
	return nil
}

// maskedDiff returns the 32 largest deviations of a frame from the empty
// background over the area of interest (pixels outside the mask), sorted
// descending.
func maskedDiff(v *datasets.VideoStream, frame probpred.Blob) probpred.Vec {
	px := frame.Dense
	diffs := make(probpred.Vec, 0, len(px))
	for y := 0; y < v.Height; y++ {
		for x := 0; x < v.Width; x++ {
			if v.InMask(x) {
				continue
			}
			i := y*v.Width + x
			diffs = append(diffs, px[i]-v.Background[i])
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(diffs)))
	return diffs[:32]
}
