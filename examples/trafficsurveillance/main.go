// Traffic surveillance: the paper's running example (§1) end to end — find
// red SUVs (and other complex predicates) in a camera stream where vehicle
// type, color, speed and route are only available after expensive UDFs.
//
// A corpus of per-clause PPs is trained once; the query optimizer then
// assembles necessary-condition PP combinations for each ad-hoc predicate
// and injects them ahead of the UDFs (§6).
//
//	go run ./examples/trafficsurveillance
package main

import (
	"fmt"
	"log"

	probpred "probpred"
	"probpred/datasets"
)

// queries are ad-hoc predicates, none of which has its own trained PP.
var queries = []string{
	"t=SUV & c=red",                  // the paper's red-SUV query
	"s>60 & s<65",                    // speeding band
	"t in {truck, van} & c!=white",   // deliveries that are not white
	"i=pt303 & (o=pt335 | o=pt306)",  // an illegal-turn route
	"t=SUV & c=red & i=pt335 & s>50", // four clauses, very selective
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The stream: a training prefix (where UDF outputs are available for
	// labeling) and the live portion the queries run over.
	all := datasets.Traffic(datasets.TrafficConfig{Rows: 12000, Seed: 11})
	prefix, live := all[:3000], all[3000:]

	// Train one SVM PP per simple clause — the §8.2 corpus.
	fmt.Println("training PP corpus on the stream prefix...")
	corpus := probpred.NewCorpus()
	clauses := []string{}
	for _, t := range []string{"sedan", "SUV", "truck", "van"} {
		clauses = append(clauses, "t="+t)
	}
	for _, c := range []string{"white", "black", "silver", "red", "other"} {
		clauses = append(clauses, "c="+c)
	}
	for _, pt := range []string{"pt211", "pt303", "pt306", "pt335", "pt401", "pt501"} {
		clauses = append(clauses, "i="+pt, "o="+pt)
	}
	clauses = append(clauses, "s>50", "s>60", "s<65", "s<70")
	for i, clause := range clauses {
		pred, err := probpred.ParsePredicate(clause)
		if err != nil {
			return err
		}
		set, err := datasets.TrafficSet(prefix, pred)
		if err != nil {
			return err
		}
		train, val, _ := set.Split(probpred.NewRNG(uint64(i)+100), 0.8, 0.2)
		pp, err := probpred.TrainPP(clause, train, val, probpred.TrainConfig{
			Approach: "Raw+SVM", Seed: uint64(i)})
		if err != nil {
			return err
		}
		corpus.Add(pp)
	}
	fmt.Printf("corpus ready: %d PPs\n\n", corpus.Size())
	opt := probpred.NewOptimizer(corpus)

	const accuracy = 0.95
	for _, qs := range queries {
		pred, err := probpred.ParsePredicate(qs)
		if err != nil {
			return err
		}
		procs, u, err := datasets.TrafficPipeline(pred, 3)
		if err != nil {
			return err
		}
		dec, err := opt.Optimize(pred, probpred.OptimizeOptions{
			Accuracy: accuracy, UDFCost: u, Domains: datasets.TrafficDomains(),
		})
		if err != nil {
			return err
		}
		noPP, err := probpred.RunPlan(probpred.BuildPlan(live, nil, procs, pred), probpred.ExecConfig{})
		if err != nil {
			return err
		}
		withPP, err := probpred.RunPlan(probpred.BuildPlan(live, dec, procs, pred), probpred.ExecConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("query: %s\n", qs)
		if dec.Inject {
			fmt.Printf("  injected: %s (est. reduction %.2f)\n", dec.Expr, dec.Reduction)
		} else {
			fmt.Printf("  no PP injected (running as-is is cheaper)\n")
		}
		fmt.Printf("  results: %d rows (vs %d without PPs) — %.1f%% of true results kept\n",
			len(withPP.Rows), len(noPP.Rows), 100*keptFraction(noPP, withPP))
		fmt.Printf("  cluster time: %.0f -> %.0f virtual ms (%.2fx speed-up)\n\n",
			noPP.ClusterTime, withPP.ClusterTime, noPP.ClusterTime/withPP.ClusterTime)
	}
	return nil
}

func keptFraction(ref, cand *probpred.ExecResult) float64 {
	if len(ref.Rows) == 0 {
		return 1
	}
	kept := map[int]bool{}
	for _, r := range cand.Rows {
		kept[r.Blob.ID] = true
	}
	n := 0
	for _, r := range ref.Rows {
		if kept[r.Blob.ID] {
			n++
		}
	}
	return float64(n) / float64(len(ref.Rows))
}
