// Quickstart: train one probabilistic predicate and use it to shortcut an
// expensive UDF.
//
// We build a toy stream of "images", each with a hidden attribute the
// expensive classifier would extract; the PP learns to predict the predicate
// outcome from raw features and filters the stream ahead of the classifier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	probpred "probpred"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthesize blobs: 2-D raw features where the (hidden) predicate
	// "is interesting" holds when the features land in the upper-right
	// region, plus noise. In a real system the labels would come from
	// running the expensive UDF on a historical sample (§4).
	rng := probpred.NewRNG(7)
	var all probpred.Set
	for i := 0; i < 3000; i++ {
		x := probpred.Vec{rng.NormFloat64(), rng.NormFloat64()}
		label := x[0]+0.5*x[1] > 1.1 // ~15% selectivity
		all.Append(probpred.FromDense(i, x), label)
	}
	train, val, test := all.Split(rng, 0.6, 0.2)

	// Train the PP. An empty Approach invokes model selection (§5.5).
	pp, err := probpred.TrainPP("interesting=1", train, val, probpred.TrainConfig{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("trained %s (per-blob cost %.2f virtual ms)\n\n", pp, pp.Cost())

	// The accuracy-versus-reduction trade-off is parametric: pick any
	// target after training, no retraining needed (§5.1).
	fmt.Printf("%-10s %12s %12s %12s\n", "target a", "reduction", "test red.", "test acc.")
	for _, a := range []float64{1.0, 0.99, 0.95, 0.9} {
		m := probpred.EvaluatePP(pp, test, a)
		fmt.Printf("%-10.2f %12.3f %12.3f %12.3f\n", a, pp.Reduction(a), m.Reduction, m.Accuracy)
	}

	// Shortcutting an expensive UDF: only blobs passing the PP reach it.
	const udfCost = 50.0 // virtual ms per blob
	a := 0.95
	processed := 0
	for _, b := range test.Blobs {
		if pp.Pass(b, a) {
			processed++
		}
	}
	saved := 1 - float64(processed)/float64(test.Len())
	fmt.Printf("\nat a=%.2f the PP sends %d/%d blobs to the %gms UDF (%.0f%% of UDF work saved)\n",
		a, processed, test.Len(), udfCost, saved*100)
	fmt.Printf("expected query speed-up: %.2fx\n",
		(udfCost)/(pp.Cost()+(1-saved)*udfCost))
	return nil
}
