// Document filter: Case 1 of §7 — retrieve documents carrying given
// categories from an LSHTC-like sparse bag-of-words corpus, where category
// membership is normally computed by an expensive classifier UDF.
//
// Model selection (§5.5) automatically lands on feature hashing + linear
// SVM for this sparse, linearly-separable input, and the trained PP filters
// most non-matching documents before the classifier runs.
//
//	go run ./examples/documentfilter
package main

import (
	"fmt"
	"log"

	probpred "probpred"
	"probpred/datasets"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus := datasets.LSHTC(datasets.LSHTCConfig{Docs: 3000, Seed: 21})
	fmt.Printf("corpus: %d documents, %d categories, vocabulary %d\n\n",
		len(corpus.Blobs), corpus.NumCategories(), corpus.Blobs[0].Dim())

	const udfCost = 40.0 // virtual ms per document for the real classifier
	for _, cat := range []int{0, 3, 7} {
		set := corpus.SetFor(cat)
		rng := probpred.NewRNG(uint64(cat) + 5)
		train, val, test := set.Split(rng, 0.6, 0.2)

		// Leave Approach empty: model selection should pick FH+SVM.
		pp, err := probpred.TrainPP(fmt.Sprintf("category=%d", cat), train, val,
			probpred.TrainConfig{Seed: uint64(cat)})
		if err != nil {
			return err
		}

		// Run the retrieval with the PP ahead of the classifier UDF.
		pred, err := probpred.ParsePredicate(
			fmt.Sprintf("%s=1", datasets.CategoryColumn(cat)))
		if err != nil {
			return err
		}
		procs := []probpred.Processor{datasets.CategoryUDF(corpus, cat, udfCost)}
		pick := probpred.NewCorpus()
		pick.Add(pp)
		// The PP's clause must match the query predicate for the optimizer,
		// so register it under the UDF-output clause too.
		pp.Clause = pred.String()
		pick.Add(pp)
		dec, err := probpred.NewOptimizer(pick).Optimize(pred, probpred.OptimizeOptions{
			Accuracy: 0.95, UDFCost: udfCost,
		})
		if err != nil {
			return err
		}
		noPP, err := probpred.RunPlan(probpred.BuildPlan(test.Blobs, nil, procs, pred),
			probpred.ExecConfig{})
		if err != nil {
			return err
		}
		withPP, err := probpred.RunPlan(probpred.BuildPlan(test.Blobs, dec, procs, pred),
			probpred.ExecConfig{})
		if err != nil {
			return err
		}
		m := probpred.EvaluatePP(pp, test, 0.95)
		fmt.Printf("category %d (selectivity %.2f): selected approach %s\n",
			cat, set.Selectivity(), pp.Approach)
		fmt.Printf("  PP reduction %.2f at accuracy %.3f\n", m.Reduction, m.Accuracy)
		fmt.Printf("  retrieval: %d/%d documents, cluster time %.0f -> %.0f vms (%.2fx)\n\n",
			len(withPP.Rows), len(noPP.Rows), noPP.ClusterTime, withPP.ClusterTime,
			noPP.ClusterTime/withPP.ClusterTime)
	}
	return nil
}
