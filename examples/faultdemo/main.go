// Command faultdemo exercises the fault-tolerance facade: a query over the
// traffic stream with every UDF wrapped in a deterministic 10% transient
// fault injector, run once without retries (fails, attributed) and once with
// a retry policy (succeeds with output identical to the fault-free run).
package main

import (
	"fmt"
	"log"

	"probpred"
	"probpred/datasets"
)

func main() {
	blobs := datasets.Traffic(datasets.TrafficConfig{Rows: 4000, Seed: 7})
	pred, err := probpred.ParsePredicate("t=SUV & s>50")
	if err != nil {
		log.Fatal(err)
	}
	procs, _, err := datasets.TrafficPipeline(pred, 7)
	if err != nil {
		log.Fatal(err)
	}

	clean, err := probpred.RunPlan(probpred.BuildPlan(blobs, nil, procs, pred), probpred.ExecConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free run: %d rows, cluster time %.0f ms\n", len(clean.Rows), clean.ClusterTime)

	inj := probpred.NewFaultInjector(99)
	inj.SetDefault(probpred.FaultSpec{TransientRate: 0.10})
	faulty := make([]probpred.Processor, len(procs))
	for i, p := range procs {
		faulty[i] = probpred.MakeFaulty(p, inj)
	}
	plan := probpred.BuildPlan(blobs, nil, faulty, pred)

	if _, err := probpred.RunPlan(plan, probpred.ExecConfig{}); err != nil {
		fmt.Printf("no retries: %v (transient: %v)\n", err, probpred.IsTransientError(err))
	}

	res, err := probpred.RunPlan(plan, probpred.ExecConfig{
		Retry: probpred.RetryPolicy{MaxAttempts: 6, BackoffBaseMS: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(res.Rows) == len(clean.Rows)
	for i := range res.Rows {
		if !same || res.Rows[i].Blob.ID != clean.Rows[i].Blob.ID {
			same = false
			break
		}
	}
	fmt.Printf("with retries:   %d rows, cluster time %.0f ms, identical to fault-free: %v\n",
		len(res.Rows), res.ClusterTime, same)
}
