// Online surveillance: the §4 online loop on a live traffic stream. The
// system starts cold — every query runs unmodified, and its UDF outputs
// label the raw frames. Once enough labels accumulate, PPs train themselves
// and the same queries start running behind injected filters. The example
// reports the cost of the same query issued repeatedly as the stream flows.
//
//	go run ./examples/onlinesurveillance
package main

import (
	"fmt"
	"log"

	probpred "probpred"
	"probpred/datasets"
	"probpred/online"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stream := datasets.Traffic(datasets.TrafficConfig{Rows: 12000, Seed: 77})
	sys, err := online.New(online.Config{
		Clauses: []string{
			"t=SUV", "t=van", "t=truck", "t=sedan",
			"c=red", "c=white", "s>60", "s<65",
		},
		MinLabels: 800,
		Train:     probpred.TrainConfig{Approach: "Raw+SVM"},
		Domains:   datasets.TrafficDomains(),
		Seed:      1,
	})
	if err != nil {
		return err
	}

	pred, err := probpred.ParsePredicate("t=SUV & c=red")
	if err != nil {
		return err
	}
	procs, u, err := datasets.TrafficPipeline(pred, 2)
	if err != nil {
		return err
	}

	const batch = 2000
	fmt.Printf("query: %s  (issued every %d frames; accuracy target 0.95)\n\n", pred, batch)
	fmt.Printf("%-12s %-8s %10s %9s   %s\n", "frames", "PPs", "cluster", "speed-up", "plan")
	for start := 0; start+batch <= len(stream); start += batch {
		window := stream[start : start+batch]
		dec, err := sys.Decide(pred, 0.95, u)
		if err != nil {
			return err
		}
		res, err := probpred.RunPlan(probpred.BuildPlan(window, dec, procs, pred), probpred.ExecConfig{})
		if err != nil {
			return err
		}
		noPP, err := probpred.RunPlan(probpred.BuildPlan(window, nil, procs, pred), probpred.ExecConfig{})
		if err != nil {
			return err
		}
		planDesc := "as-is (cold start: collecting labels)"
		if dec.Inject {
			planDesc = dec.Expr
			// Feed the observed reduction back for dependence tracking
			// (A.5): the fraction of frames the filter actually dropped.
			passed := res.Stats.RowsIn[procs[0].Name()]
			sys.ReportRun(dec, 1-float64(passed)/float64(batch))
		}
		// The unmodified run labels the stream for the online trainer
		// (in a real system this is the plan's side output, Figure 3b).
		for _, b := range window {
			if err := sys.Observe(b, datasets.TrafficLookup(b)); err != nil {
				return err
			}
		}
		fmt.Printf("%6d-%-6d %-8d %9.0fs %8.2fx   %s\n",
			start, start+batch, len(sys.TrainedClauses()),
			res.ClusterTime/1000, noPP.ClusterTime/res.ClusterTime, planDesc)
	}
	fmt.Printf("\ntrained clauses: %v (after %d trainings)\n", sys.TrainedClauses(), sys.Trainings)
	return nil
}
